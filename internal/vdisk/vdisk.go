// Package vdisk provides the local-disk substrate for the simulated cluster.
//
// The paper's experiments run on machines with two to four spinning disks;
// spill I/O and merge I/O are a large share of the abstraction cost the
// optimizations remove (Fig. 2, Fig. 8). At reproduction scale (tens of MB
// instead of tens of GB) a modern machine's page cache would make that I/O
// free and hide exactly the effect under study. vdisk therefore offers two
// implementations behind one interface:
//
//   - Mem: a plain in-memory store, used by unit tests where timing does not
//     matter.
//   - Throttled: wraps any Disk and meters reads and writes at a configured
//     bandwidth with a per-operation seek latency, modeling one shared
//     2014-era SATA disk per node. Concurrent users of the same disk queue
//     against each other, as they would on a real spindle.
//
// All implementations account bytes read and written, which the experiment
// harness reports alongside timings.
package vdisk

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by Disk implementations.
var (
	ErrNotExist = errors.New("vdisk: file does not exist")
	ErrExist    = errors.New("vdisk: file already exists")
	ErrClosed   = errors.New("vdisk: file is closed")
)

// Disk is a minimal local filesystem: flat namespace, write-once files.
// Implementations must be safe for concurrent use.
type Disk interface {
	// Create creates a new file for writing. The file becomes readable
	// after Close.
	Create(name string) (io.WriteCloser, error)
	// Open opens an existing, closed file for reading.
	Open(name string) (io.ReadCloser, error)
	// OpenSection opens a byte range [off, off+length) of an existing,
	// closed file for reading. It models the positioned reads a shuffle
	// server uses to serve one partition of a map output file.
	OpenSection(name string, off, length int64) (io.ReadCloser, error)
	// Size returns the size of an existing, closed file.
	Size(name string) (int64, error)
	// Remove deletes a file. A file that was created but never closed is
	// also removed (its half-written content is discarded), so failed
	// writers can be swept.
	Remove(name string) error
	// Rename atomically gives an existing, closed file a new name. It
	// fails with ErrExist when the destination already exists — the
	// primitive behind the runtime's first-committer-wins attempt commit.
	Rename(oldName, newName string) error
	// Stats returns cumulative I/O accounting.
	Stats() Stats
}

// Stats is cumulative disk accounting.
type Stats struct {
	BytesWritten int64
	BytesRead    int64
	Creates      int64
	Opens        int64
}

// Mem is an in-memory Disk.
type Mem struct {
	mu    sync.Mutex
	files map[string][]byte
	open  map[string]bool // files being written, not yet readable
	stats stats
}

type stats struct {
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
	creates      atomic.Int64
	opens        atomic.Int64
}

func (s *stats) snapshot() Stats {
	return Stats{
		BytesWritten: s.bytesWritten.Load(),
		BytesRead:    s.bytesRead.Load(),
		Creates:      s.creates.Load(),
		Opens:        s.opens.Load(),
	}
}

// NewMem returns an empty in-memory disk.
func NewMem() *Mem {
	return &Mem{files: make(map[string][]byte), open: make(map[string]bool)}
}

// Create implements Disk.
func (m *Mem) Create(name string) (io.WriteCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	if m.open[name] {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	m.open[name] = true
	m.stats.creates.Add(1)
	return &memWriter{disk: m, name: name}, nil
}

// Open implements Disk.
func (m *Mem) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	m.stats.opens.Add(1)
	return &memReader{disk: m, data: data}, nil
}

// OpenSection implements Disk.
func (m *Mem) OpenSection(name string, off, length int64) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if off < 0 || length < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("vdisk: section [%d,%d) out of range for %s (%d bytes)", off, off+length, name, len(data))
	}
	m.stats.opens.Add(1)
	return &memReader{disk: m, data: data[off : off+length]}, nil
}

// Size implements Disk.
func (m *Mem) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return int64(len(data)), nil
}

// Remove implements Disk.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.open[name] {
		// Abandoned half-written file: discard the name so it can be
		// recreated. The dangling writer keeps appending to its own
		// buffer, which is never published.
		delete(m.open, name)
		return nil
	}
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(m.files, name)
	return nil
}

// Rename implements Disk.
func (m *Mem) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	if _, ok := m.files[newName]; ok || m.open[newName] {
		return fmt.Errorf("%w: %s", ErrExist, newName)
	}
	m.files[newName] = data
	delete(m.files, oldName)
	return nil
}

// Stats implements Disk.
func (m *Mem) Stats() Stats { return m.stats.snapshot() }

// List returns the names of all readable files (testing helper).
func (m *Mem) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	return names
}

type memWriter struct {
	disk   *Mem
	name   string
	buf    []byte
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	w.buf = append(w.buf, p...)
	w.disk.stats.bytesWritten.Add(int64(len(p)))
	return len(p), nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	w.disk.mu.Lock()
	defer w.disk.mu.Unlock()
	w.disk.files[w.name] = w.buf
	delete(w.disk.open, w.name)
	return nil
}

type memReader struct {
	disk   *Mem
	data   []byte
	off    int
	closed bool
}

func (r *memReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, ErrClosed
	}
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	r.disk.stats.bytesRead.Add(int64(n))
	return n, nil
}

func (r *memReader) Close() error {
	if r.closed {
		return ErrClosed
	}
	r.closed = true
	return nil
}

// ThrottleConfig describes the performance model of a Throttled disk.
type ThrottleConfig struct {
	// WriteBytesPerSec is the sustained write bandwidth. Zero disables
	// write throttling.
	WriteBytesPerSec int64
	// ReadBytesPerSec is the sustained read bandwidth. Zero disables read
	// throttling.
	ReadBytesPerSec int64
	// OpLatency is charged once per Create/Open, modeling a seek.
	OpLatency time.Duration
}

// DefaultThrottle models one 2014-era 7200rpm SATA disk.
func DefaultThrottle() ThrottleConfig {
	return ThrottleConfig{
		WriteBytesPerSec: 90 << 20,  // 90 MB/s
		ReadBytesPerSec:  120 << 20, // 120 MB/s
		OpLatency:        2 * time.Millisecond,
	}
}

// Throttled wraps a Disk and meters its throughput. All files on one
// Throttled share a single bandwidth budget: concurrent transfers queue, as
// on one physical spindle.
type Throttled struct {
	inner Disk
	cfg   ThrottleConfig

	mu       sync.Mutex
	nextFree time.Time // virtual time at which the disk head is free
}

// NewThrottled wraps inner with the given performance model.
func NewThrottled(inner Disk, cfg ThrottleConfig) *Throttled {
	return &Throttled{inner: inner, cfg: cfg}
}

// charge blocks the caller for the time a transfer of n bytes takes at the
// given bandwidth, serializing against all other users of this disk.
func (t *Throttled) charge(n int64, bytesPerSec int64, lat time.Duration) {
	if bytesPerSec <= 0 && lat <= 0 {
		return
	}
	var busy time.Duration
	if bytesPerSec > 0 {
		busy = time.Duration(float64(n) / float64(bytesPerSec) * float64(time.Second))
	}
	busy += lat
	now := time.Now()
	t.mu.Lock()
	start := t.nextFree
	if start.Before(now) {
		start = now
	}
	t.nextFree = start.Add(busy)
	deadline := t.nextFree
	t.mu.Unlock()
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
}

// Create implements Disk.
func (t *Throttled) Create(name string) (io.WriteCloser, error) {
	w, err := t.inner.Create(name)
	if err != nil {
		return nil, err
	}
	t.charge(0, 0, t.cfg.OpLatency)
	return &throttledWriter{t: t, w: w}, nil
}

// Open implements Disk.
func (t *Throttled) Open(name string) (io.ReadCloser, error) {
	r, err := t.inner.Open(name)
	if err != nil {
		return nil, err
	}
	t.charge(0, 0, t.cfg.OpLatency)
	return &throttledReader{t: t, r: r}, nil
}

// OpenSection implements Disk.
func (t *Throttled) OpenSection(name string, off, length int64) (io.ReadCloser, error) {
	r, err := t.inner.OpenSection(name, off, length)
	if err != nil {
		return nil, err
	}
	t.charge(0, 0, t.cfg.OpLatency)
	return &throttledReader{t: t, r: r}, nil
}

// Size implements Disk.
func (t *Throttled) Size(name string) (int64, error) { return t.inner.Size(name) }

// Remove implements Disk.
func (t *Throttled) Remove(name string) error { return t.inner.Remove(name) }

// Rename implements Disk. Renames are metadata operations: they pay the
// per-op seek latency but move no bytes.
func (t *Throttled) Rename(oldName, newName string) error {
	if err := t.inner.Rename(oldName, newName); err != nil {
		return err
	}
	t.charge(0, 0, t.cfg.OpLatency)
	return nil
}

// Stats implements Disk.
func (t *Throttled) Stats() Stats { return t.inner.Stats() }

type throttledWriter struct {
	t *Throttled
	w io.WriteCloser
}

func (w *throttledWriter) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	w.t.charge(int64(n), w.t.cfg.WriteBytesPerSec, 0)
	return n, err
}

func (w *throttledWriter) Close() error { return w.w.Close() }

type throttledReader struct {
	t *Throttled
	r io.ReadCloser
}

func (r *throttledReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	if n > 0 {
		r.t.charge(int64(n), r.t.cfg.ReadBytesPerSec, 0)
	}
	return n, err
}

func (r *throttledReader) Close() error { return r.r.Close() }
