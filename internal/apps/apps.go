// Package apps implements the paper's six benchmark applications (§II-B)
// plus the SynText parameterizable benchmark of §V-D against the mr
// runtime's public contract. Each constructor returns a ready job spec;
// callers flip the optimization switches (FreqBuf, SpillMatcher) on the
// returned Job.
//
// All applications produce deterministic text output so any configuration
// can be byte-compared against the sequential reference executor.
package apps

import (
	"fmt"
	"sort"
	"strconv"

	"mrtext/internal/fastparse"
	"mrtext/internal/mr"
	"mrtext/internal/serde"
)

// Tokenization note: every mapper splits its line with fastparse.Fields
// (or fastparse.SplitByte for the '|'-delimited logs) into a per-mapper
// scratch slice, so the steady-state map loop performs zero heap
// allocations per record — the words are subslices of the split reader's
// arena and the field headers reuse the mapper's scratch capacity. This
// replaced the bytes.Fields-based splitWords helper, which allocated a
// fresh token slice per line.

// sumCombine adds zig-zag varint int64 values — the combiner and the
// reduction core of WordCount and AccessLogSum.
func sumCombine(key []byte, values [][]byte, emit func(k, v []byte) error) error {
	var sum int64
	for _, v := range values {
		n, err := serde.DecodeInt64(v)
		if err != nil {
			return fmt.Errorf("apps: decoding count for %q: %w", key, err)
		}
		sum += n
	}
	return emit(key, serde.EncodeInt64(sum))
}

// sumReducer reduces by summing int64 values and emitting the total.
type sumReducer struct{}

func (sumReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var sum int64
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n, err := serde.DecodeInt64(v)
		if err != nil {
			return fmt.Errorf("apps: decoding count for %q: %w", key, err)
		}
		sum += n
	}
	return out.Collect(key, serde.EncodeInt64(sum))
}

// textKVFormat renders "key<TAB>int64Value\n".
func textKVFormat(key, value []byte) ([]byte, error) {
	n, err := serde.DecodeInt64(value)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(key)+24)
	line = append(line, key...)
	line = append(line, '\t')
	line = strconv.AppendInt(line, n, 10)
	line = append(line, '\n')
	return line, nil
}

// ---------- WordCount ----------

var one = serde.EncodeInt64(1)

type wordCountMapper struct {
	words [][]byte // tokenizer scratch, reused across lines
}

// Map implements the WordCount map(): one (word, 1) per token.
//
//mrlint:hotpath
func (m *wordCountMapper) Map(_ int64, line []byte, out mr.Collector) error {
	m.words = fastparse.Fields(m.words[:0], line)
	for _, w := range m.words {
		if err := out.Collect(w, one); err != nil {
			return err
		}
	}
	return nil
}

// WordCount counts occurrences of each distinct word in the corpus — the
// canonical text-centric MapReduce program.
func WordCount(inputs ...string) *mr.Job {
	return &mr.Job{
		Name:       "wordcount",
		Inputs:     inputs,
		NewMapper:  func() mr.Mapper { return &wordCountMapper{} },
		NewReducer: func() mr.Reducer { return sumReducer{} },
		Combine:    sumCombine,
		Format:     textKVFormat,
	}
}

// ---------- InvertedIndex ----------

// invIdxDocShift buckets line offsets into pseudo-documents of 64 KiB, so
// posting lists carry (doc, offset) locations as a real index would.
const invIdxDocShift = 16

type invertedIndexMapper struct {
	words   [][]byte // tokenizer scratch, reused across lines
	posting [1]serde.Posting
	scratch []byte
}

// Map implements the InvertedIndex map(): one single-posting list per
// token, encoded into the mapper's scratch.
//
//mrlint:hotpath
func (m *invertedIndexMapper) Map(off int64, line []byte, out mr.Collector) error {
	m.words = fastparse.Fields(m.words[:0], line)
	if len(m.words) == 0 {
		return nil
	}
	m.posting[0] = serde.Posting{Doc: uint64(off) >> invIdxDocShift, Off: uint64(off)}
	m.scratch = serde.AppendPostings(m.scratch[:0], m.posting[:])
	for _, w := range m.words {
		if err := out.Collect(w, m.scratch); err != nil {
			return err
		}
	}
	return nil
}

// postingsCombine merges posting lists — the value grows with every merge,
// which is what makes InvertedIndex the storage-intensive corner of
// Fig. 10.
func postingsCombine(key []byte, values [][]byte, emit func(k, v []byte) error) error {
	if len(values) == 1 {
		return emit(key, values[0])
	}
	var all []serde.Posting
	var err error
	for _, v := range values {
		all, err = serde.DecodePostings(all, v)
		if err != nil {
			return fmt.Errorf("apps: merging postings for %q: %w", key, err)
		}
	}
	sortPostings(all)
	return emit(key, serde.EncodePostings(all))
}

type invertedIndexReducer struct{}

func (invertedIndexReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var all []serde.Posting
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		all, err = serde.DecodePostings(all, v)
		if err != nil {
			return fmt.Errorf("apps: decoding postings for %q: %w", key, err)
		}
	}
	sortPostings(all)
	return out.Collect(key, serde.EncodePostings(all))
}

func sortPostings(ps []serde.Posting) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Doc != ps[j].Doc {
			return ps[i].Doc < ps[j].Doc
		}
		return ps[i].Off < ps[j].Off
	})
}

// invertedIndexFormat renders "word<TAB>doc:off doc:off ...\n".
func invertedIndexFormat(key, value []byte) ([]byte, error) {
	ps, err := serde.DecodePostings(nil, value)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(key)+len(ps)*12)
	line = append(line, key...)
	line = append(line, '\t')
	for i, p := range ps {
		if i > 0 {
			line = append(line, ' ')
		}
		line = strconv.AppendUint(line, p.Doc, 10)
		line = append(line, ':')
		line = strconv.AppendUint(line, p.Off, 10)
	}
	line = append(line, '\n')
	return line, nil
}

// InvertedIndex builds, for each word, the list of all locations where it
// appears.
func InvertedIndex(inputs ...string) *mr.Job {
	return &mr.Job{
		Name:       "invertedindex",
		Inputs:     inputs,
		NewMapper:  func() mr.Mapper { return &invertedIndexMapper{} },
		NewReducer: func() mr.Reducer { return invertedIndexReducer{} },
		Combine:    postingsCombine,
		Format:     invertedIndexFormat,
	}
}
