package apps

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"mrtext/internal/fastparse"
	"mrtext/internal/mr"
)

// SynText is the parameterizable synthetic text benchmark of §V-D/Fig. 10.
// It spans the space of text-centric applications along two axes:
//
//   - CPU-intensity: the volume of computation map() performs per word, as
//     a multiplicative factor over WordCount (factor 1 ≈ WordCount's cost;
//     large factors approach WordPOSTag).
//   - Storage-intensity: the average growth in value size when records are
//     aggregated by combine(). 0 means aggregates stay constant-size
//     (WordCount-like); 1 means aggregation doesn't shrink data at all
//     (InvertedIndex-like).
type SynTextConfig struct {
	// CPUFactor scales per-word map() computation (≥ 0; 0 = no extra work).
	CPUFactor int
	// Storage ∈ [0, 1] controls aggregate growth.
	Storage float64
	// PayloadBase is the single-record payload size in bytes (default 8).
	PayloadBase int
}

// synTextValue encodes (count, payload): a uvarint count followed by
// payloadSize(count) filler bytes. The payload depends only on the count,
// so aggregation is associative and deterministic.
func synTextValue(dst []byte, count uint64, cfg SynTextConfig) []byte {
	dst = binary.AppendUvarint(dst, count)
	size := synPayloadSize(count, cfg)
	for i := 0; i < size; i++ {
		dst = append(dst, 'x')
	}
	return dst
}

// synPayloadSize implements the storage-intensity model: a single record
// carries PayloadBase bytes; an aggregate of n records carries
// base·(1 + σ·(n−1)) bytes — σ=0 collapses to one record's size, σ=1 keeps
// the full concatenated size.
func synPayloadSize(count uint64, cfg SynTextConfig) int {
	base := cfg.PayloadBase
	if count <= 1 {
		return base
	}
	return base + int(cfg.Storage*float64(base)*float64(count-1))
}

func synTextCount(v []byte) (uint64, error) {
	n, k := binary.Uvarint(v)
	if k <= 0 {
		return 0, fmt.Errorf("apps: malformed SynText value")
	}
	return n, nil
}

type synTextMapper struct {
	cfg     SynTextConfig
	words   [][]byte // tokenizer scratch, reused across lines
	scratch []byte
	cpuSink uint64 // per-mapper: map tasks burn CPU concurrently
}

// Map implements the SynText map(): per-word CPU burn plus a count-1
// payload record, tokenized and encoded through reused scratch.
//
//mrlint:hotpath
func (m *synTextMapper) Map(_ int64, line []byte, out mr.Collector) error {
	m.words = fastparse.Fields(m.words[:0], line)
	for _, w := range m.words {
		m.cpuSink += burnCPU(w, m.cfg.CPUFactor)
		m.scratch = synTextValue(m.scratch[:0], 1, m.cfg)
		if err := out.Collect(w, m.scratch); err != nil {
			return err
		}
	}
	return nil
}

// burnCPU performs factor rounds of hash mixing over the word — the
// CPU-intensity knob. The caller accumulates the result into a per-mapper
// sink so the work cannot be optimized away.
func burnCPU(word []byte, factor int) uint64 {
	var h uint64 = 1469598103934665603
	for r := 0; r < factor; r++ {
		for _, c := range word {
			h ^= uint64(c)
			h *= 1099511628211
			h ^= h >> 33
		}
	}
	return h
}

func synTextCombine(cfg SynTextConfig) mr.CombineFunc {
	return func(key []byte, values [][]byte, emit func(k, v []byte) error) error {
		var total uint64
		for _, v := range values {
			n, err := synTextCount(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, synTextValue(nil, total, cfg))
	}
}

type synTextReducer struct {
	cfg SynTextConfig
}

func (r synTextReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var total uint64
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n, err := synTextCount(v)
		if err != nil {
			return err
		}
		total += n
	}
	return out.Collect(key, synTextValue(nil, total, r.cfg))
}

func synTextFormat(key, value []byte) ([]byte, error) {
	n, err := synTextCount(value)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(key)+24)
	line = append(line, key...)
	line = append(line, '\t')
	line = strconv.AppendUint(line, n, 10)
	line = append(line, '\n')
	return line, nil
}

// SynText builds the synthetic benchmark job over a text corpus.
func SynText(cfg SynTextConfig, inputs ...string) *mr.Job {
	if cfg.PayloadBase <= 0 {
		cfg.PayloadBase = 8
	}
	if cfg.Storage < 0 {
		cfg.Storage = 0
	}
	if cfg.Storage > 1 {
		cfg.Storage = 1
	}
	return &mr.Job{
		Name:       fmt.Sprintf("syntext-c%d-s%02.0f", cfg.CPUFactor, cfg.Storage*100),
		Inputs:     inputs,
		NewMapper:  func() mr.Mapper { return &synTextMapper{cfg: cfg} },
		NewReducer: func() mr.Reducer { return synTextReducer{cfg: cfg} },
		Combine:    synTextCombine(cfg),
		Format:     synTextFormat,
	}
}
