package apps

import (
	"bytes"
	"fmt"
	"strconv"

	"mrtext/internal/fastparse"
	"mrtext/internal/mr"
	"mrtext/internal/serde"
)

// PageRank input (textgen.WebGraph): one page per line,
//
//	url<TAB>rank<TAB>out1,out2,...
//
// map() re-emits the graph structure under the page's own key and fans a
// rank contribution out to every linked page — the §II-B description. The
// combiner sums contributions (and forwards the unique graph record); the
// reducer applies one damped PageRank update and writes the page back in
// input format, ready to be the next iteration's input.

const pageRankDamping = 0.85

// rankScale converts ranks to integer "rank units". All rank arithmetic is
// done on integral values (carried exactly in float64, far below 2^53), so
// sums are associative and every configuration — combined, frequency-
// buffered or reference — produces bit-identical output.
const rankScale = 1 << 40

type pageRankMapper struct {
	links   [][]byte // parsed-outlink scratch, reused across lines
	scratch []byte   // graph-record encode scratch
	contrib []byte   // contribution-record encode scratch
}

// Map implements the PageRank map(): the graph record plus one rank
// contribution per outlink, all encoded into reused scratch — the links
// are subslices of the input line, never copied to strings (the
// strconv.ParseFloat(string(...)) rank parse and the []byte(t) key
// conversion each allocated per record before the fast path).
//
//mrlint:hotpath
func (m *pageRankMapper) Map(_ int64, line []byte, out mr.Collector) error {
	if len(line) == 0 {
		return nil
	}
	url, rank, outlinks, err := parseGraphLine(m.links[:0], line)
	m.links = outlinks
	if err != nil {
		return err
	}
	// Reconstruct the graph: (URL, (0, outlinks)).
	m.scratch = serde.AppendRankRecord(m.scratch[:0], 0, true, outlinks)
	if err := out.Collect(url, m.scratch); err != nil {
		return err
	}
	// Fan out contributions: (T, rank/|outlinks|) for each T.
	if len(outlinks) == 0 {
		return nil
	}
	units := int64(rank*rankScale + 0.5)
	share := units / int64(len(outlinks))
	m.contrib = serde.AppendRankRecord(m.contrib[:0], float64(share), false, nil)
	for _, t := range outlinks {
		if err := out.Collect(t, m.contrib); err != nil {
			return err
		}
	}
	return nil
}

// parseGraphLine splits "url<TAB>rank<TAB>out1,out2,..." in place: url and
// the outlinks alias line, the outlink headers are appended to dst, and
// the rank is parsed with fastparse.ParseFloat (bit-identical to strconv
// on the generator's format, without the string conversion).
//
//mrlint:hotpath
func parseGraphLine(dst [][]byte, line []byte) (url []byte, rank float64, outlinks [][]byte, err error) {
	tab1 := bytes.IndexByte(line, '\t')
	if tab1 < 0 {
		//mrlint:ignore alloccheck cold path: malformed-input rejection, not the per-record loop
		return nil, 0, dst, fmt.Errorf("apps: malformed graph line (no rank field)")
	}
	rest := line[tab1+1:]
	tab2 := bytes.IndexByte(rest, '\t')
	if tab2 < 0 {
		//mrlint:ignore alloccheck cold path: malformed-input rejection, not the per-record loop
		return nil, 0, dst, fmt.Errorf("apps: malformed graph line (no links field)")
	}
	rank, err = fastparse.ParseFloat(rest[:tab2])
	if err != nil {
		//mrlint:ignore alloccheck cold path: malformed-input rejection, not the per-record loop
		return nil, 0, dst, fmt.Errorf("apps: parsing rank %q: %w", rest[:tab2], err)
	}
	links := rest[tab2+1:]
	if len(links) > 0 {
		dst = fastparse.SplitByte(dst, links, ',')
	}
	return line[:tab1], rank, dst, nil
}

// pageRankCombine folds a set of rank records into at most one: the summed
// contribution units plus the graph payload if present. Unit sums are
// exact integers, so combining in any order or grouping is lossless.
func pageRankCombine(key []byte, values [][]byte, emit func(k, v []byte) error) error {
	sum, graph, outlinks, err := foldRankRecords(key, values)
	if err != nil {
		return err
	}
	return emit(key, serde.EncodeRankRecord(serde.RankRecord{Rank: sum, Graph: graph, Outlinks: outlinks}))
}

func foldRankRecords(key []byte, values [][]byte) (sum float64, graph bool, outlinks []string, err error) {
	for _, v := range values {
		rec, err := serde.DecodeRankRecord(v)
		if err != nil {
			return 0, false, nil, fmt.Errorf("apps: decoding rank record for %q: %w", key, err)
		}
		sum += rec.Rank
		if rec.Graph {
			graph = true
			outlinks = rec.Outlinks
		}
	}
	return sum, graph, outlinks, nil
}

// pageRankReducer applies the damped update r' = (1−d)/N + d·Σcontrib and
// re-emits the page line.
type pageRankReducer struct {
	pages float64
}

func (r pageRankReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var sum float64
	var graph bool
	var outlinks []string
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rec, err := serde.DecodeRankRecord(v)
		if err != nil {
			return fmt.Errorf("apps: decoding rank record for %q: %w", key, err)
		}
		sum += rec.Rank
		if rec.Graph {
			graph = true
			outlinks = rec.Outlinks
		}
	}
	if !graph {
		// Dangling target: it exists only as a link destination; it still
		// receives rank but has no outlinks.
		outlinks = nil
	}
	sumUnits := int64(sum)
	teleport := int64((1 - pageRankDamping) * rankScale / r.pages)
	damped := sumUnits / 20 * 17 // ×0.85 in integer arithmetic
	newUnits := teleport + damped
	return out.Collect(key, serde.EncodeRankRecord(serde.RankRecord{Rank: float64(newUnits), Graph: graph, Outlinks: outlinks}))
}

// pageRankFormat renders the next-iteration input line, converting rank
// units back to a float rank.
func pageRankFormat(key, value []byte) ([]byte, error) {
	rec, err := serde.DecodeRankRecord(value)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(key)+32+len(rec.Outlinks)*12)
	line = append(line, key...)
	line = append(line, '\t')
	line = strconv.AppendFloat(line, rec.Rank/rankScale, 'e', 8, 64)
	line = append(line, '\t')
	for i, l := range rec.Outlinks {
		if i > 0 {
			line = append(line, ',')
		}
		line = append(line, l...)
	}
	line = append(line, '\n')
	return line, nil
}

// PageRank performs one damped PageRank iteration over the crawl. pages is
// the total page count N (for the teleport term).
func PageRank(graph string, pages int64) *mr.Job {
	return &mr.Job{
		Name:       "pagerank",
		Inputs:     []string{graph},
		NewMapper:  func() mr.Mapper { return &pageRankMapper{} },
		NewReducer: func() mr.Reducer { return pageRankReducer{pages: float64(pages)} },
		Combine:    pageRankCombine,
		Format:     pageRankFormat,
	}
}
