package apps

import (
	"testing"

	"mrtext/internal/mr"
)

// TestGroundTruthMappers pins the //mrlint:hotpath annotations on the
// rewritten map() implementations to the real compiler: with scratch warm,
// each mapper must process a representative line with zero heap
// allocations (the collector here is a no-op; the runtime's collector
// copies into the spill arena, which is gated by its own ground truth).
// CI runs this plain and under -race; race instrumentation inflates
// allocation counts, so the ==0 assertions are relaxed there
// (raceEnabled), matching the alloccheck ground-truth convention.
func TestGroundTruthMappers(t *testing.T) {
	sink := mr.CollectorFunc(func(k, v []byte) error { return nil })

	textLine := []byte("the quick brown fox jumps over the lazy dog")
	visitLine := []byte("137.229.31.70|example.org/faeri.html|1979-12-12|359|Mozilla/5.0|ALM|3")
	rankingLine := []byte("example.org/faeri.html|77|10")
	graphLine := []byte("page/a\t1.23456789e-01\tpage/b,page/c,page/d")

	cases := []struct {
		name string
		m    mr.Mapper
		line []byte
	}{
		{"wordCount", &wordCountMapper{}, textLine},
		{"invertedIndex", &invertedIndexMapper{}, textLine},
		{"synText", &synTextMapper{cfg: SynTextConfig{CPUFactor: 1, PayloadBase: 8}}, textLine},
		{"accessLogSum", &accessLogSumMapper{}, visitLine},
		{"accessLogJoinVisit", &accessLogJoinMapper{}, visitLine},
		{"accessLogJoinRanking", &accessLogJoinMapper{}, rankingLine},
		{"pageRank", &pageRankMapper{}, graphLine},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func() {
				if err := c.m.Map(0, c.line, sink); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the mapper's scratch
			allocs := testing.AllocsPerRun(200, run)
			if allocs != 0 && !raceEnabled {
				t.Errorf("%s.Map: %.2f allocs/line on the fast path, want 0", c.name, allocs)
			}
		})
	}
}
