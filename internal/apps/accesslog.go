package apps

import (
	"bytes"
	"fmt"
	"sort"

	"mrtext/internal/fastparse"
	"mrtext/internal/mr"
	"mrtext/internal/serde"
)

// UserVisits schema (textgen):
//
//	sourceIP|destURL|visitDate|adRevenueCents|userAgent|countryCode|duration
//
// Rankings schema:
//
//	pageURL|pageRank|avgDuration
const (
	visitFields   = 7
	rankingFields = 3
)

// ---------- AccessLogSum ----------
// SELECT destURL, sum(adRevenue) FROM UserVisits GROUP BY destURL;

type accessLogSumMapper struct {
	fields [][]byte // '|'-split scratch, reused across lines
	val    []byte   // encoded-value scratch
}

// Map implements the AccessLogSum map(): (destURL, adRevenueCents) per
// visit. The revenue field is parsed in place with fastparse.ParseInt —
// the strconv.ParseInt(string(f[3]), ...) it replaced allocated a string
// per record — and the varint value is encoded into reused scratch.
//
//mrlint:hotpath
func (m *accessLogSumMapper) Map(_ int64, line []byte, out mr.Collector) error {
	if len(line) == 0 {
		return nil
	}
	m.fields = fastparse.SplitByte(m.fields[:0], line, '|')
	f := m.fields
	if len(f) != visitFields {
		//mrlint:ignore alloccheck cold path: malformed-input rejection, not the per-record loop
		return fmt.Errorf("apps: malformed UserVisits line (%d fields)", len(f))
	}
	cents, err := fastparse.ParseInt(f[3])
	if err != nil {
		//mrlint:ignore alloccheck cold path: malformed-input rejection, not the per-record loop
		return fmt.Errorf("apps: parsing adRevenue: %w", err)
	}
	m.val = serde.AppendInt64(m.val[:0], cents)
	return out.Collect(f[1], m.val)
}

// AccessLogSum aggregates ad revenue per destination URL — the paper's
// relational GROUP BY benchmark.
func AccessLogSum(visits string) *mr.Job {
	return &mr.Job{
		Name:       "accesslogsum",
		Inputs:     []string{visits},
		NewMapper:  func() mr.Mapper { return &accessLogSumMapper{} },
		NewReducer: func() mr.Reducer { return sumReducer{} },
		Combine:    sumCombine,
		Format:     textKVFormat,
	}
}

// ---------- AccessLogJoin ----------
// SELECT sourceIP, adRevenue, pageRank FROM UserVisits UV, Rankings R
// WHERE UV.destURL = R.pageURL;

// Join values are tagged: 'R' + pageRank for ranking tuples,
// 'V' + sourceIP + '|' + adRevenueCents for visit tuples. There is no
// combiner — join tuples cannot be aggregated — which is exactly why the
// paper sees only marginal frequency-buffering gains here.
type accessLogJoinMapper struct {
	fields  [][]byte // '|'-split scratch, reused across lines
	scratch []byte
}

// Map implements the AccessLogJoin map(): tagged tuples keyed by URL.
//
//mrlint:hotpath
func (m *accessLogJoinMapper) Map(_ int64, line []byte, out mr.Collector) error {
	if len(line) == 0 {
		return nil
	}
	m.fields = fastparse.SplitByte(m.fields[:0], line, '|')
	f := m.fields
	switch len(f) {
	case visitFields:
		m.scratch = append(m.scratch[:0], 'V')
		m.scratch = append(m.scratch, f[0]...)
		m.scratch = append(m.scratch, '|')
		m.scratch = append(m.scratch, f[3]...)
		return out.Collect(f[1], m.scratch)
	case rankingFields:
		m.scratch = append(m.scratch[:0], 'R')
		m.scratch = append(m.scratch, f[1]...)
		return out.Collect(f[0], m.scratch)
	default:
		//mrlint:ignore alloccheck cold path: malformed-input rejection, not the per-record loop
		return fmt.Errorf("apps: malformed join input line (%d fields)", len(f))
	}
}

type accessLogJoinReducer struct{}

func (accessLogJoinReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var rank []byte
	var visits [][]byte
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch {
		case len(v) > 0 && v[0] == 'R':
			rank = append(rank[:0], v[1:]...)
		case len(v) > 0 && v[0] == 'V':
			visits = append(visits, append([]byte(nil), v[1:]...))
		default:
			return fmt.Errorf("apps: untagged join value for %q", key)
		}
	}
	if rank == nil || len(visits) == 0 {
		return nil // URL on one side only: inner join drops it
	}
	// Sort matched tuples so output is deterministic regardless of the
	// order values arrived in (frequency-buffering reorders values).
	sort.Slice(visits, func(i, j int) bool { return bytes.Compare(visits[i], visits[j]) < 0 })
	var line []byte
	for _, v := range visits {
		idx := bytes.LastIndexByte(v, '|')
		if idx < 0 {
			return fmt.Errorf("apps: malformed visit tuple for %q", key)
		}
		line = line[:0]
		line = append(line, v[:idx]...) // sourceIP
		line = append(line, '\t')
		line = append(line, v[idx+1:]...) // adRevenue
		line = append(line, '\t')
		line = append(line, rank...) // pageRank
		if err := out.Collect(line, nil); err != nil {
			return err
		}
	}
	return nil
}

// joinFormat emits the already-formatted key as one line.
func joinFormat(key, _ []byte) ([]byte, error) {
	return append(append([]byte(nil), key...), '\n'), nil
}

// AccessLogJoin joins the visit log with the rankings table on URL — the
// paper's relational join benchmark. It has no combiner.
func AccessLogJoin(visits, rankings string) *mr.Job {
	return &mr.Job{
		Name:       "accesslogjoin",
		Inputs:     []string{visits, rankings},
		NewMapper:  func() mr.Mapper { return &accessLogJoinMapper{} },
		NewReducer: func() mr.Reducer { return accessLogJoinReducer{} },
		Format:     joinFormat,
	}
}
