package apps

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mrtext/internal/mr"
	"mrtext/internal/serde"
)

// gather runs a mapper over one line and returns the emitted pairs.
func gather(t *testing.T, m mr.Mapper, off int64, line string) []struct{ K, V []byte } {
	t.Helper()
	var out []struct{ K, V []byte }
	err := m.Map(off, []byte(line), mr.CollectorFunc(func(k, v []byte) error {
		out = append(out, struct{ K, V []byte }{append([]byte(nil), k...), append([]byte(nil), v...)})
		return nil
	}))
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	return out
}

func TestWordCountMapper(t *testing.T) {
	got := gather(t, &wordCountMapper{}, 0, "a b a  c")
	if len(got) != 4 {
		t.Fatalf("emitted %d", len(got))
	}
	if string(got[0].K) != "a" || string(got[3].K) != "c" {
		t.Errorf("keys: %q %q", got[0].K, got[3].K)
	}
	for _, p := range got {
		n, err := serde.DecodeInt64(p.V)
		if err != nil || n != 1 {
			t.Errorf("value: %d %v", n, err)
		}
	}
	if got := gather(t, &wordCountMapper{}, 0, ""); len(got) != 0 {
		t.Errorf("empty line emitted %d pairs", len(got))
	}
}

// TestSumCombineGroupingInvariance: the combiner may be applied to any
// partition of the values in any order without changing the total — the
// algebraic property both frequency-buffering and spill combining rely on.
func TestSumCombineGroupingInvariance(t *testing.T) {
	f := func(vals []int16, split uint8) bool {
		values := make([][]byte, len(vals))
		var want int64
		for i, v := range vals {
			values[i] = serde.EncodeInt64(int64(v))
			want += int64(v)
		}
		// Direct.
		var direct int64
		sumCombine([]byte("k"), values, func(_, v []byte) error {
			direct, _ = serde.DecodeInt64(v)
			return nil
		})
		if len(vals) == 0 {
			return true
		}
		// Two-phase with an arbitrary split point.
		cut := int(split) % len(values)
		var partials [][]byte
		for _, group := range [][][]byte{values[:cut], values[cut:]} {
			if len(group) == 0 {
				continue
			}
			sumCombine([]byte("k"), group, func(_, v []byte) error {
				partials = append(partials, append([]byte(nil), v...))
				return nil
			})
		}
		var twoPhase int64
		sumCombine([]byte("k"), partials, func(_, v []byte) error {
			twoPhase, _ = serde.DecodeInt64(v)
			return nil
		})
		return direct == want && twoPhase == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTextKVFormat(t *testing.T) {
	line, err := textKVFormat([]byte("word"), serde.EncodeInt64(42))
	if err != nil || string(line) != "word\t42\n" {
		t.Errorf("got %q err %v", line, err)
	}
	if _, err := textKVFormat([]byte("w"), []byte{}); err == nil {
		t.Error("empty value formatted")
	}
}

func TestInvertedIndexMapperDocBuckets(t *testing.T) {
	m := &invertedIndexMapper{}
	got := gather(t, m, 1<<20, "hello world")
	if len(got) != 2 {
		t.Fatalf("emitted %d", len(got))
	}
	ps, err := serde.DecodePostings(nil, got[0].V)
	if err != nil || len(ps) != 1 {
		t.Fatalf("postings %v err %v", ps, err)
	}
	if ps[0].Doc != (1<<20)>>invIdxDocShift || ps[0].Off != 1<<20 {
		t.Errorf("posting %+v", ps[0])
	}
}

func TestPostingsCombineGroupingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	single := func(doc, off uint64) []byte {
		return serde.EncodePostings([]serde.Posting{{Doc: doc, Off: off}})
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		var values [][]byte
		for i := 0; i < n; i++ {
			values = append(values, single(uint64(rng.Intn(8)), uint64(rng.Intn(100))))
		}
		combineAll := func(vals [][]byte) []byte {
			var out []byte
			postingsCombine([]byte("k"), vals, func(_, v []byte) error {
				out = append([]byte(nil), v...)
				return nil
			})
			return out
		}
		direct := combineAll(values)
		cut := rng.Intn(n)
		var parts [][]byte
		if cut > 0 {
			parts = append(parts, combineAll(values[:cut]))
		}
		if cut < n {
			parts = append(parts, combineAll(values[cut:]))
		}
		hier := combineAll(parts)
		if !bytes.Equal(direct, hier) {
			t.Fatalf("trial %d: grouping changed combined postings", trial)
		}
	}
}

func TestInvertedIndexFormat(t *testing.T) {
	v := serde.EncodePostings([]serde.Posting{{Doc: 2, Off: 7}, {Doc: 5, Off: 0}})
	line, err := invertedIndexFormat([]byte("w"), v)
	if err != nil || string(line) != "w\t2:7 5:0\n" {
		t.Errorf("got %q err %v", line, err)
	}
}

func TestAccessLogSumMapper(t *testing.T) {
	line := "1.2.3.4|example.org/a.html|2010-01-02|1234|Mozilla/5.0|USA|17"
	got := gather(t, &accessLogSumMapper{}, 0, line)
	if len(got) != 1 || string(got[0].K) != "example.org/a.html" {
		t.Fatalf("got %v", got)
	}
	n, _ := serde.DecodeInt64(got[0].V)
	if n != 1234 {
		t.Errorf("revenue %d", n)
	}
	// Malformed lines error.
	var m accessLogSumMapper
	if err := m.Map(0, []byte("only|three|fields"), mr.CollectorFunc(func(k, v []byte) error { return nil })); err == nil {
		t.Error("malformed line accepted")
	}
	// Blank lines are skipped.
	if got := gather(t, &accessLogSumMapper{}, 0, ""); len(got) != 0 {
		t.Error("blank line emitted")
	}
}

func TestAccessLogJoinMapperTagging(t *testing.T) {
	m := &accessLogJoinMapper{}
	visit := gather(t, m, 0, "9.9.9.9|example.org/x.html|2010-01-01|500|curl/7.30|DEU|3")
	if len(visit) != 1 || visit[0].V[0] != 'V' {
		t.Fatalf("visit: %v", visit)
	}
	if string(visit[0].K) != "example.org/x.html" || string(visit[0].V) != "V9.9.9.9|500" {
		t.Errorf("visit kv: %q %q", visit[0].K, visit[0].V)
	}
	ranking := gather(t, m, 0, "example.org/x.html|77|10")
	if len(ranking) != 1 || string(ranking[0].V) != "R77" {
		t.Fatalf("ranking: %v", ranking)
	}
}

func TestAccessLogJoinReducer(t *testing.T) {
	vals := [][]byte{
		[]byte("V2.2.2.2|300"),
		[]byte("R55"),
		[]byte("V1.1.1.1|200"),
	}
	var out []string
	err := accessLogJoinReducer{}.Reduce([]byte("url"), &sliceIter{vals: vals},
		mr.CollectorFunc(func(k, v []byte) error {
			out = append(out, string(k))
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by tuple: 1.1.1.1 before 2.2.2.2, rank appended.
	want := []string{"1.1.1.1\t200\t55", "2.2.2.2\t300\t55"}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Errorf("join output %v want %v", out, want)
	}
	// No rank: inner join drops everything.
	out = nil
	err = accessLogJoinReducer{}.Reduce([]byte("url"), &sliceIter{vals: [][]byte{[]byte("V1.1.1.1|1")}},
		mr.CollectorFunc(func(k, v []byte) error { out = append(out, string(k)); return nil }))
	if err != nil || len(out) != 0 {
		t.Errorf("rank-less join emitted %v err %v", out, err)
	}
}

type sliceIter struct {
	vals [][]byte
	pos  int
}

func (s *sliceIter) Next() ([]byte, bool, error) {
	if s.pos >= len(s.vals) {
		return nil, false, nil
	}
	v := s.vals[s.pos]
	s.pos++
	return v, true, nil
}

func TestPageRankMapper(t *testing.T) {
	m := &pageRankMapper{}
	got := gather(t, m, 0, "page/a\t0.5\tpage/b,page/c")
	if len(got) != 3 {
		t.Fatalf("emitted %d", len(got))
	}
	rec, err := serde.DecodeRankRecord(got[0].V)
	if err != nil || !rec.Graph || len(rec.Outlinks) != 2 {
		t.Fatalf("graph record %+v err %v", rec, err)
	}
	// Each contribution = 0.5/2 in rank units.
	contrib, _ := serde.DecodeRankRecord(got[1].V)
	rank := 0.5 // runtime value: mirror the mapper's unit conversion
	wantUnits := int64(rank*rankScale+0.5) / 2
	if int64(contrib.Rank) != wantUnits {
		t.Errorf("contribution %v want %d", contrib.Rank, wantUnits)
	}
	if string(got[1].K) != "page/b" || string(got[2].K) != "page/c" {
		t.Errorf("targets %q %q", got[1].K, got[2].K)
	}
}

func TestPageRankCombineGroupingInvariance(t *testing.T) {
	contrib := func(units int64) []byte {
		return serde.EncodeRankRecord(serde.RankRecord{Rank: float64(units)})
	}
	graph := serde.EncodeRankRecord(serde.RankRecord{Graph: true, Outlinks: []string{"page/z"}})
	values := [][]byte{contrib(100), graph, contrib(250), contrib(7)}
	run := func(groups [][][]byte) serde.RankRecord {
		var partials [][]byte
		for _, g := range groups {
			if len(g) == 0 {
				continue
			}
			pageRankCombine([]byte("k"), g, func(_, v []byte) error {
				partials = append(partials, append([]byte(nil), v...))
				return nil
			})
		}
		var out serde.RankRecord
		pageRankCombine([]byte("k"), partials, func(_, v []byte) error {
			out, _ = serde.DecodeRankRecord(v)
			return nil
		})
		return out
	}
	direct := run([][][]byte{values})
	split := run([][][]byte{values[:2], values[2:]})
	if direct.Rank != split.Rank || direct.Rank != 357 {
		t.Errorf("direct %v split %v want 357", direct.Rank, split.Rank)
	}
	if !direct.Graph || len(direct.Outlinks) != 1 {
		t.Errorf("graph payload lost: %+v", direct)
	}
}

func TestParseGraphLineErrors(t *testing.T) {
	for _, bad := range []string{"nofields", "a\tnorank", "a\tx\tb"} {
		if _, _, _, err := parseGraphLine(nil, []byte(bad)); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	url, rank, links, err := parseGraphLine(nil, []byte("u\t0.25\t"))
	if err != nil || string(url) != "u" || rank != 0.25 || len(links) != 0 {
		t.Errorf("dangling page: %q %v %v %v", url, rank, links, err)
	}
}

func TestSynTextPayloadModel(t *testing.T) {
	cfg := SynTextConfig{PayloadBase: 10}
	// σ=0: aggregates stay base-sized.
	cfg.Storage = 0
	if got := synPayloadSize(100, cfg); got != 10 {
		t.Errorf("σ=0 size %d", got)
	}
	// σ=1: aggregates keep full concatenated size.
	cfg.Storage = 1
	if got := synPayloadSize(100, cfg); got != 1000 {
		t.Errorf("σ=1 size %d", got)
	}
	// σ=0.5: halfway.
	cfg.Storage = 0.5
	if got := synPayloadSize(3, cfg); got != 10+10 {
		t.Errorf("σ=0.5 n=3 size %d", got)
	}
}

func TestSynTextCombineCounts(t *testing.T) {
	cfg := SynTextConfig{PayloadBase: 4, Storage: 0.5}
	combine := synTextCombine(cfg)
	vals := [][]byte{synTextValue(nil, 3, cfg), synTextValue(nil, 5, cfg)}
	var out []byte
	if err := combine([]byte("k"), vals, func(_, v []byte) error {
		out = append([]byte(nil), v...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	n, err := synTextCount(out)
	if err != nil || n != 8 {
		t.Errorf("combined count %d err %v", n, err)
	}
	if len(out) != len(synTextValue(nil, 8, cfg)) {
		t.Error("combined payload size wrong")
	}
}

func TestSynTextJobClamping(t *testing.T) {
	j := SynText(SynTextConfig{CPUFactor: 2, Storage: 5}, "in")
	if !strings.Contains(j.Name, "syntext") {
		t.Errorf("name %q", j.Name)
	}
	j2 := SynText(SynTextConfig{Storage: -1}, "in")
	_ = j2 // constructor must not panic; clamps internally
}

func TestJobConstructors(t *testing.T) {
	jobs := []*mr.Job{
		WordCount("c"),
		InvertedIndex("c"),
		WordPOSTag(0, "c"),
		AccessLogSum("v"),
		AccessLogJoin("v", "r"),
		PageRank("g", 100),
		SynText(SynTextConfig{}, "c"),
	}
	for _, j := range jobs {
		if j.Name == "" || j.NewMapper == nil || j.NewReducer == nil || j.Format == nil {
			t.Errorf("job %q incomplete", j.Name)
		}
		if j.NewMapper() == nil || j.NewReducer() == nil {
			t.Errorf("job %q factories return nil", j.Name)
		}
	}
	// AccessLogJoin is the only one without a combiner.
	if AccessLogJoin("v", "r").Combine != nil {
		t.Error("join has a combiner")
	}
	if WordCount("c").Combine == nil {
		t.Error("wordcount lacks a combiner")
	}
	if got := len(AccessLogJoin("v", "r").Inputs); got != 2 {
		t.Errorf("join inputs %d", got)
	}
}

func TestWordPOSMapperEmitsOneHotVectors(t *testing.T) {
	m := WordPOSTag(1, "c").NewMapper()
	var sum uint32
	err := m.Map(0, []byte("some words to tag"), mr.CollectorFunc(func(k, v []byte) error {
		vec, err := serde.DecodeCounterVec(nil, v)
		if err != nil {
			return err
		}
		var s uint32
		for _, c := range vec {
			s += c
		}
		sum += s
		if s != 1 {
			return fmt.Errorf("vector for %q sums to %d", k, s)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4 {
		t.Errorf("total tags %d for 4 words", sum)
	}
}
