package apps

import (
	"fmt"
	"strconv"

	"mrtext/internal/fastparse"
	"mrtext/internal/mr"
	"mrtext/internal/postag"
	"mrtext/internal/serde"
)

// DefaultPOSIterations is the rescoring depth that makes map() dominate
// runtime the way OpenNLP does in the paper (Fig. 2: WordPOSTag user code
// > 90% of all work).
const DefaultPOSIterations = 60

// wordPOSMapper tags each line and emits, per word, a counter vector with
// a 1 at the decoded tag's index — exactly the paper's description: "map()
// emits an array of counters, each counts the times this word is of a
// certain type".
type wordPOSMapper struct {
	tagger  *postag.Tagger
	words   [][]byte // tokenizer scratch, reused across lines
	scratch []uint32
	enc     []byte
}

func (m *wordPOSMapper) Map(_ int64, line []byte, out mr.Collector) error {
	m.words = fastparse.Fields(m.words[:0], line)
	words := m.words
	if len(words) == 0 {
		return nil
	}
	tags := m.tagger.Tag(words)
	if cap(m.scratch) < int(postag.NumTags) {
		m.scratch = make([]uint32, postag.NumTags)
	}
	for i, w := range words {
		vec := m.scratch[:postag.NumTags]
		for j := range vec {
			vec[j] = 0
		}
		vec[tags[i]] = 1
		m.enc = append(m.enc[:0], serde.EncodeCounterVec(vec)...)
		if err := out.Collect(w, m.enc); err != nil {
			return err
		}
	}
	return nil
}

// counterVecCombine sums counter vectors — combiner and reducer core.
func counterVecCombine(key []byte, values [][]byte, emit func(k, v []byte) error) error {
	var sum []uint32
	for _, v := range values {
		vec, err := serde.DecodeCounterVec(nil, v)
		if err != nil {
			return fmt.Errorf("apps: decoding counters for %q: %w", key, err)
		}
		sum = serde.AddCounterVecs(sum, vec)
	}
	return emit(key, serde.EncodeCounterVec(sum))
}

type wordPOSReducer struct{}

func (wordPOSReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var sum []uint32
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		vec, err := serde.DecodeCounterVec(nil, v)
		if err != nil {
			return fmt.Errorf("apps: decoding counters for %q: %w", key, err)
		}
		sum = serde.AddCounterVecs(sum, vec)
	}
	return out.Collect(key, serde.EncodeCounterVec(sum))
}

// wordPOSFormat renders "word<TAB>TAG:n TAG:n ...\n" for non-zero tags.
func wordPOSFormat(key, value []byte) ([]byte, error) {
	vec, err := serde.DecodeCounterVec(nil, value)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(key)+len(vec)*8)
	line = append(line, key...)
	line = append(line, '\t')
	first := true
	for i, c := range vec {
		if c == 0 {
			continue
		}
		if !first {
			line = append(line, ' ')
		}
		first = false
		line = append(line, postag.Tag(i).String()...)
		line = append(line, ':')
		line = strconv.AppendUint(line, uint64(c), 10)
	}
	line = append(line, '\n')
	return line, nil
}

// WordPOSTag computes per-word part-of-speech statistics over the corpus
// with a CPU-intensive tagging map(). iterations controls the tagger's
// rescoring depth (CPU intensity); pass 0 for the paper-like default.
func WordPOSTag(iterations int, inputs ...string) *mr.Job {
	if iterations <= 0 {
		iterations = DefaultPOSIterations
	}
	return &mr.Job{
		Name:       "wordpostag",
		Inputs:     inputs,
		NewMapper:  func() mr.Mapper { return &wordPOSMapper{tagger: postag.New(iterations)} },
		NewReducer: func() mr.Reducer { return wordPOSReducer{} },
		Combine:    counterVecCombine,
		Format:     wordPOSFormat,
	}
}
