// Package spillbuf implements the map task's in-memory spill buffer: the
// shared structure between the map goroutine (which applies the user's
// map() and appends serialized records) and the support goroutine (which
// sorts, combines and spills them to local disk). It is the direct
// analogue of Hadoop's MapOutputBuffer + SpillThread pair that §II-C2 and
// §IV of the paper analyze.
//
// Semantics follow the paper's model exactly:
//
//   - The buffer has a fixed byte budget M. Appended records accumulate as
//     the "pending" region.
//   - A spill is handed to the consumer when the consumer is free and the
//     pending bytes have reached x·M, where x is the spill percentage
//     supplied by a spillmatch.Controller (static 0.8 in the baseline,
//     adaptive under the spill-matcher). The consumer takes *all* pending
//     records — so if it was busy while the threshold was crossed the
//     spill is larger, reproducing m_i = max{xM, min{(p/c)m_{i−1}, M−m_{i−1}}}.
//   - The handed-off spill keeps occupying its bytes until the consumer
//     Releases it; the producer blocks when pending + in-flight bytes hit
//     M. Producer block time and consumer idle time are recorded as the
//     map/support idle times of Table II.
//
// Per spill the buffer measures the producer's active production time and
// the consumer's active consumption time and reports them to the
// controller — the T_p/T_c measurements the spill-matcher adapts on.
//
// Records are stored packed, Hadoop kvbuffer/kvmeta-style: key and value
// bytes are appended into one arena and a compact kvio.Meta entry per
// record carries the partition, arena location, and cached key prefix. A
// spill hands the consumer the (meta, arena) pair directly — no
// per-record allocations — and Release recycles the batch's backing
// arrays for the next pending region, so a steady-state map task cycles
// a small fixed set of arenas instead of allocating two slices per
// record.
package spillbuf

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mrtext/internal/core/spillmatch"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/trace"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("spillbuf: buffer is closed")

// recordOverhead approximates per-record bookkeeping bytes charged against
// the buffer budget (Hadoop charges 16 bytes of accounting per record in
// io.sort.record.percent space; we fold it into one number).
const recordOverhead = 16

// MaxCapacity bounds the buffer budget M. Arena offsets are 32-bit
// (kvio.Meta.KeyOff), exactly as Hadoop's kvbuffer caps io.sort.mb at
// 2047 MB for its int offsets; 2 GiB is far above any configuration the
// experiments use.
const MaxCapacity = 1 << 31

// maxArenaBytes is the hard ceiling on one pending region's arena: past
// this, 32-bit arena offsets would overflow. Reachable only through a
// single record of several GiB (the oversized-record escape hatch
// ignores M), which Append rejects explicitly.
const maxArenaBytes = math.MaxUint32

// maxFreeBatches caps the recycling pool: one batch being refilled plus
// one in flight covers the paper's 1–1 producer/consumer shape.
const maxFreeBatches = 2

// Spill is one batch of records handed from the producer to the consumer.
type Spill struct {
	// Recs holds the spill's records in emit order, packed into a meta
	// array plus byte arena. The consumer owns it until Release, which
	// recycles the backing arrays.
	Recs kvio.PackedRecords
	// Bytes is the buffer-budget charge of the batch (payload bytes plus
	// per-record overhead).
	Bytes int64
	// Produce is the producer's active time (map() + emit, excluding
	// blocked time) spent generating this spill's records.
	Produce time.Duration
	// Seq numbers spills from 0.
	Seq int
}

// Buffer is the spill buffer. One producer and one consumer goroutine use
// it concurrently (more consumers are permitted; the paper's configuration
// is 1–1).
type Buffer struct {
	capacity int64
	ctrl     spillmatch.Controller
	tm       *metrics.TaskMetrics

	// Trace identity: which (node, task, slot) the buffer's wait spans and
	// spill instants are attributed to. tr nil means tracing is off.
	tr     *trace.Tracer
	trNode int
	trTask int
	trSlot int

	mu   sync.Mutex
	cond *sync.Cond

	pending      kvio.PackedRecords
	pendingBytes int64
	inflight     int64
	closed       bool
	blocked      bool                 // producer currently blocked on a full buffer
	free         []kvio.PackedRecords // released batches, recycled as pending regions

	produceMark time.Time     // producer's clock: end of its last Append (or creation)
	produceAcc  time.Duration // active produce time accumulated for the pending spill
	seq         int
	spills      int
	spillBytes  int64
	maxPending  int64
}

// New creates a buffer of capacity bytes governed by ctrl; instrumentation
// is recorded into tm (which may be nil).
func New(capacity int64, ctrl spillmatch.Controller, tm *metrics.TaskMetrics) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("spillbuf: capacity must be positive, got %d", capacity)
	}
	if capacity > MaxCapacity {
		return nil, fmt.Errorf("spillbuf: capacity %d exceeds the %d arena-offset bound", capacity, int64(MaxCapacity))
	}
	if ctrl == nil {
		ctrl = spillmatch.NewStatic(spillmatch.DefaultStaticPercent)
	}
	b := &Buffer{capacity: capacity, ctrl: ctrl, tm: tm, produceMark: time.Now()}
	b.cond = sync.NewCond(&b.mu)
	return b, nil
}

// AttachTrace attributes the buffer's wait spans and spill instants to the
// given tracer under (node, task, slot). Call before the first Append; a
// nil tracer leaves tracing off.
func (b *Buffer) AttachTrace(tr *trace.Tracer, node, task, slot int) {
	b.tr = tr
	b.trNode = node
	b.trTask = task
	b.trSlot = slot
}

// Capacity returns M.
func (b *Buffer) Capacity() int64 { return b.capacity }

// RecordBytes returns the buffer charge for one record.
func RecordBytes(key, value []byte) int64 {
	return int64(len(key)) + int64(len(value)) + recordOverhead
}

// Append adds one record (copying key and value). It blocks while the
// buffer is full and returns ErrClosed after Close. The returned duration
// is the time spent blocked, which the caller excludes from its own
// operation accounting (it is already recorded as map-thread idle time).
//
//mrlint:hotpath
func (b *Buffer) Append(part int, key, value []byte) (time.Duration, error) {
	now := time.Now()

	var waited time.Duration
	var firstWait time.Time
	size := RecordBytes(key, value)
	b.mu.Lock()
	b.produceAcc += now.Sub(b.produceMark) // map()+emit work since last Append
	for !b.closed && b.pendingBytes+b.inflight+size > b.capacity && !(b.pendingBytes == 0 && b.inflight == 0) {
		b.blocked = true
		b.cond.Broadcast() // wake the consumer: buffer-full also justifies a spill
		waitStart := time.Now()
		if firstWait.IsZero() {
			firstWait = waitStart
		}
		b.cond.Wait()
		w := time.Since(waitStart)
		waited += w
		if b.tm != nil {
			b.tm.AddWaitMap(w)
		}
	}
	b.blocked = false
	// The trace span reuses the same measured durations fed to AddWaitMap,
	// so trace-derived idle fractions agree with metrics exactly.
	b.tr.Complete(trace.KindWaitMap, trace.LaneMap, b.trNode, b.trTask, b.trSlot, firstWait, waited)
	if b.closed {
		b.mu.Unlock()
		return waited, ErrClosed
	}
	if int64(len(b.pending.Arena))+int64(len(key))+int64(len(value)) > maxArenaBytes {
		b.mu.Unlock()
		//mrlint:ignore alloccheck cold path: multi-GiB record rejection, never taken per record
		return waited, fmt.Errorf("spillbuf: record of %d bytes overflows the %d-byte arena offset space", int64(len(key))+int64(len(value)), int64(maxArenaBytes))
	}
	b.pending.Append(part, key, value)
	b.pendingBytes += size
	if b.pendingBytes > b.maxPending {
		b.maxPending = b.pendingBytes
	}
	ready := float64(b.pendingBytes) >= b.ctrl.Percent()*float64(b.capacity)
	b.produceMark = time.Now()
	b.checkInvariants("Append")
	b.mu.Unlock()
	if ready {
		b.cond.Broadcast()
	}
	return waited, nil
}

// Close signals end of input. The consumer will receive any remaining
// pending records as a final spill and then be told the stream is done.
func (b *Buffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// NextSpill blocks until a spill is available and returns it, or returns
// ok=false when the buffer is closed and fully drained. Consumer idle time
// is recorded as support-thread wait.
func (b *Buffer) NextSpill() (s Spill, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		threshold := b.ctrl.Percent() * float64(b.capacity)
		takeable := b.pendingBytes > 0 &&
			(float64(b.pendingBytes) >= threshold || b.closed || b.blocked)
		if takeable {
			b.checkPendingSum("NextSpill")
			b.tr.Instant(trace.KindSpillHandoff, trace.LaneSupport, b.trNode, b.trTask, b.pendingBytes)
			s = Spill{
				Recs:    b.pending,
				Bytes:   b.pendingBytes,
				Produce: b.produceAcc,
				Seq:     b.seq,
			}
			b.seq++
			b.spills++
			b.spillBytes += b.pendingBytes
			b.inflight += b.pendingBytes
			// Start the next pending region on a recycled batch when one
			// is available, so steady state reuses the same arenas.
			b.pending = kvio.PackedRecords{}
			if n := len(b.free); n > 0 {
				b.pending = b.free[n-1]
				b.free = b.free[:n-1]
			}
			b.pendingBytes = 0
			b.produceAcc = 0
			b.checkInvariants("NextSpill")
			return s, true
		}
		if b.closed && b.pendingBytes == 0 {
			return Spill{}, false
		}
		waitStart := time.Now()
		b.cond.Wait()
		w := time.Since(waitStart)
		if b.tm != nil {
			b.tm.AddWaitSupport(w)
		}
		b.tr.Complete(trace.KindWaitSupport, trace.LaneSupport, b.trNode, b.trTask, b.trSlot, waitStart, w)
	}
}

// Release frees a consumed spill's bytes, reports its measurements to the
// controller, and wakes a blocked producer. consume is the consumer's
// active processing time for the spill. The spill's backing arrays are
// recycled; the caller must not touch s.Recs afterwards.
func (b *Buffer) Release(s Spill, consume time.Duration) {
	b.mu.Lock()
	b.inflight -= s.Bytes
	if b.inflight < 0 {
		b.inflight = 0
	}
	if len(b.free) < maxFreeBatches {
		s.Recs.Reset()
		b.free = append(b.free, s.Recs)
	}
	b.checkInvariants("Release")
	b.mu.Unlock()
	b.ctrl.Record(s.Bytes, s.Produce, consume)
	// Arg carries the controller's post-Record spill percentage in basis
	// points, so adaptive threshold moves are visible on the timeline.
	b.tr.Instant(trace.KindSpillDecision, trace.LaneSupport, b.trNode, b.trTask, int64(b.ctrl.Percent()*10000))
	b.cond.Broadcast()
}

// Stats describes the buffer's activity after the task completes.
type Stats struct {
	Spills     int
	SpillBytes int64
	MaxPending int64
}

// Stats returns activity counters.
func (b *Buffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Spills: b.spills, SpillBytes: b.spillBytes, MaxPending: b.maxPending}
}
