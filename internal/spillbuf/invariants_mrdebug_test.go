//go:build mrdebug

package spillbuf

import (
	"strings"
	"testing"
)

// These tests exist only in mrdebug builds: they verify the invariant
// checks fire on corrupted state and stay silent on healthy state.

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", wantSubstr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic = %v, want message containing %q", r, wantSubstr)
		}
	}()
	f()
}

func TestCheckInvariantsHealthy(t *testing.T) {
	b, err := New(1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(0, []byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	b.checkInvariants("test")
	b.checkPendingSum("test")
	b.mu.Unlock()
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	newBuf := func() *Buffer {
		b, err := New(1<<20, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append(0, []byte("key"), []byte("value")); err != nil {
			t.Fatal(err)
		}
		return b
	}

	b := newBuf()
	b.mu.Lock()
	b.pendingBytes = -1
	mustPanic(t, "negative pendingBytes", func() { b.checkInvariants("test") })
	b.mu.Unlock()

	b = newBuf()
	b.mu.Lock()
	b.seq = b.spills + 1
	mustPanic(t, "seq", func() { b.checkInvariants("test") })
	b.mu.Unlock()

	b = newBuf()
	b.mu.Lock()
	b.pendingBytes += 7 // accounting no longer matches the record sum
	b.maxPending = b.pendingBytes
	mustPanic(t, "record sum", func() { b.checkPendingSum("test") })
	b.mu.Unlock()
}
