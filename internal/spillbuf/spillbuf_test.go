package spillbuf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mrtext/internal/core/spillmatch"
	"mrtext/internal/metrics"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	b, err := New(1<<10, nil, nil) // nil controller defaults to static 0.8
	if err != nil {
		t.Fatal(err)
	}
	if b.Capacity() != 1<<10 {
		t.Errorf("capacity %d", b.Capacity())
	}
}

// TestAllRecordsDeliveredOnce: everything appended arrives at the consumer
// exactly once, in order, under arbitrary interleavings.
func TestAllRecordsDeliveredOnce(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int64(256 + int(capRaw)*8)
		b, err := New(capacity, spillmatch.NewStatic(0.5), nil)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		const n = 500

		var got []int
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				s, ok := b.NextSpill()
				if !ok {
					return
				}
				for i := 0; i < s.Recs.Len(); i++ {
					v := s.Recs.Value(i)
					got = append(got, int(v[0])|int(v[1])<<8)
				}
				b.Release(s, time.Microsecond)
			}
		}()
		for i := 0; i < n; i++ {
			v := []byte{byte(i), byte(i >> 8), 0}
			v = append(v, make([]byte, rng.Intn(16))...)
			if _, err := b.Append(i%4, []byte("key"), v); err != nil {
				return false
			}
		}
		b.Close()
		<-done
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRecordsAreCopied(t *testing.T) {
	b, err := New(1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("key")
	val := []byte("value")
	if _, err := b.Append(0, key, val); err != nil {
		t.Fatal(err)
	}
	key[0] = 'X'
	val[0] = 'X'
	b.Close()
	s, ok := b.NextSpill()
	if !ok {
		t.Fatal("no spill")
	}
	if string(s.Recs.Key(0)) != "key" || string(s.Recs.Value(0)) != "value" {
		t.Errorf("buffers aliased: %q %q", s.Recs.Key(0), s.Recs.Value(0))
	}
	if s.Recs.Part(0) != 0 {
		t.Errorf("partition %d", s.Recs.Part(0))
	}
	b.Release(s, 0)
}

func TestPackedSpillContents(t *testing.T) {
	// Records arrive packed in emit order with partition, key and value
	// intact, and Release recycles the batch's arena for later spills.
	b, err := New(1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		v := []byte(fmt.Sprintf("value%04d", i))
		if _, err := b.Append(i%7, k, v); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	s, ok := b.NextSpill()
	if !ok || s.Recs.Len() != n {
		t.Fatalf("spill: ok=%v len=%d", ok, s.Recs.Len())
	}
	for i := 0; i < n; i++ {
		wantK := fmt.Sprintf("key%04d", i)
		wantV := fmt.Sprintf("value%04d", i)
		if s.Recs.Part(i) != i%7 || string(s.Recs.Key(i)) != wantK || string(s.Recs.Value(i)) != wantV {
			t.Fatalf("record %d: (%d, %q, %q)", i, s.Recs.Part(i), s.Recs.Key(i), s.Recs.Value(i))
		}
	}
	arenaCap := cap(s.Recs.Arena)
	b.Release(s, 0)
	b.mu.Lock()
	recycled := len(b.free) == 1 && cap(b.free[0].Arena) == arenaCap && len(b.free[0].Arena) == 0
	b.mu.Unlock()
	if !recycled {
		t.Error("released batch not recycled into the free pool")
	}
}

func TestCapacityBound(t *testing.T) {
	if _, err := New(MaxCapacity+1, nil, nil); err == nil {
		t.Error("capacity beyond the arena-offset bound accepted")
	}
	if _, err := New(MaxCapacity, nil, nil); err != nil {
		t.Errorf("max capacity rejected: %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	b, err := New(1<<10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := b.Append(0, []byte("k"), []byte("v")); err != ErrClosed {
		t.Errorf("append after close: %v", err)
	}
	if _, ok := b.NextSpill(); ok {
		t.Error("spill from empty closed buffer")
	}
}

func TestSpillTriggeredAtThreshold(t *testing.T) {
	// Static x=0.5 over a 1 KiB buffer: the consumer must receive a spill
	// once ~512 bytes accumulate, well before input ends.
	b, err := New(1<<10, spillmatch.NewStatic(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	firstSpill := make(chan Spill, 1)
	go func() {
		s, ok := b.NextSpill()
		if ok {
			firstSpill <- s
			b.Release(s, 0)
		}
		for {
			s, ok := b.NextSpill()
			if !ok {
				return
			}
			b.Release(s, 0)
		}
	}()
	rec := make([]byte, 60)
	for i := 0; i < 100; i++ {
		if _, err := b.Append(0, []byte("k"), rec); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	select {
	case s := <-firstSpill:
		if s.Bytes < 512-100 || s.Bytes > 1<<10 {
			t.Errorf("first spill %d bytes, threshold 512", s.Bytes)
		}
		if s.Seq != 0 {
			t.Errorf("first spill seq %d", s.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no spill delivered")
	}
}

func TestProducerBlocksWhenFull(t *testing.T) {
	tm := metrics.NewTaskMetrics()
	b, err := New(512, spillmatch.NewStatic(0.5), tm)
	if err != nil {
		t.Fatal(err)
	}
	// Slow consumer: holds each spill for a while.
	go func() {
		for {
			s, ok := b.NextSpill()
			if !ok {
				return
			}
			time.Sleep(20 * time.Millisecond)
			b.Release(s, 20*time.Millisecond)
		}
	}()
	rec := make([]byte, 40)
	for i := 0; i < 50; i++ {
		if _, err := b.Append(0, []byte("k"), rec); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if tm.WaitMap() == 0 {
		t.Error("producer never blocked despite a slow consumer and a tiny buffer")
	}
}

func TestConsumerWaitAccounted(t *testing.T) {
	tm := metrics.NewTaskMetrics()
	b, err := New(1<<20, spillmatch.NewStatic(0.9), tm)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			s, ok := b.NextSpill()
			if !ok {
				return
			}
			b.Release(s, 0)
		}
	}()
	time.Sleep(20 * time.Millisecond) // consumer idles: nothing to take
	b.Append(0, []byte("k"), []byte("v"))
	b.Close()
	<-done
	if tm.WaitSupport() < 10*time.Millisecond {
		t.Errorf("support wait %v not accounted", tm.WaitSupport())
	}
}

func TestControllerReceivesMeasurements(t *testing.T) {
	m := spillmatch.NewMatcher(spillmatch.DefaultConfig())
	b, err := New(1<<10, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 64; i++ {
			if _, err := b.Append(0, []byte("k"), make([]byte, 50)); err != nil {
				return
			}
		}
		b.Close()
	}()
	for {
		s, ok := b.NextSpill()
		if !ok {
			break
		}
		b.Release(s, time.Millisecond)
	}
	if m.Spills() == 0 {
		t.Error("controller saw no measurements")
	}
}

func TestOversizeRecordAccepted(t *testing.T) {
	// A single record larger than the whole buffer must still pass (when
	// the buffer is otherwise empty), not deadlock.
	b, err := New(64, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			s, ok := b.NextSpill()
			if !ok {
				return
			}
			b.Release(s, 0)
		}
	}()
	if _, err := b.Append(0, []byte("k"), make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("oversize record deadlocked")
	}
}

func TestStats(t *testing.T) {
	b, err := New(1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Append(0, []byte("key"), []byte("value"))
	}
	b.Close()
	var consumed int64
	for {
		s, ok := b.NextSpill()
		if !ok {
			break
		}
		consumed += s.Bytes
		b.Release(s, 0)
	}
	st := b.Stats()
	want := 10 * RecordBytes([]byte("key"), []byte("value"))
	if st.SpillBytes != want || consumed != want {
		t.Errorf("spill bytes %d / consumed %d, want %d", st.SpillBytes, consumed, want)
	}
	if st.Spills == 0 || st.MaxPending == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestProduceTimeExcludesWaits(t *testing.T) {
	// The per-spill produce measurement must not include time the producer
	// spent blocked: feed fast, block hard, and check T_p stays well under
	// wall time.
	b, err := New(512, spillmatch.NewStatic(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	var produceTotal time.Duration
	var mu sync.Mutex
	go func() {
		for {
			s, ok := b.NextSpill()
			if !ok {
				return
			}
			mu.Lock()
			produceTotal += s.Produce
			mu.Unlock()
			time.Sleep(10 * time.Millisecond) // force producer blocking
			b.Release(s, 10*time.Millisecond)
		}
	}()
	start := time.Now()
	for i := 0; i < 60; i++ {
		if _, err := b.Append(0, []byte("k"), make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	wall := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	if produceTotal > wall/2 {
		t.Errorf("produce time %v vs wall %v: waits leaked into T_p", produceTotal, wall)
	}
}

func TestManyProducersSingleConsumer(t *testing.T) {
	// The buffer tolerates multiple producers (not the paper's shape, but
	// the support for it must not corrupt accounting).
	b, err := New(4<<10, spillmatch.NewStatic(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			s, ok := b.NextSpill()
			if !ok {
				return
			}
			delivered += s.Recs.Len()
			b.Release(s, 0)
		}
	}()
	var wg sync.WaitGroup
	const producers, per = 4, 100
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := b.Append(0, []byte(fmt.Sprintf("p%d", p)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	b.Close()
	<-done
	if delivered != producers*per {
		t.Errorf("delivered %d records, want %d", delivered, producers*per)
	}
}
