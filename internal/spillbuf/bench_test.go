package spillbuf

import (
	"testing"
	"time"

	"mrtext/internal/core/spillmatch"
)

// BenchmarkPipeline measures produce→consume throughput of the spill
// buffer under the two controllers.
func BenchmarkPipeline(b *testing.B) {
	for _, ctrl := range []struct {
		name string
		mk   func() spillmatch.Controller
	}{
		{"static-0.8", func() spillmatch.Controller { return spillmatch.NewStatic(0.8) }},
		{"matcher", func() spillmatch.Controller { return spillmatch.NewMatcher(spillmatch.DefaultConfig()) }},
	} {
		b.Run(ctrl.name, func(b *testing.B) {
			buf, err := New(256<<10, ctrl.mk(), nil)
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					s, ok := buf.NextSpill()
					if !ok {
						return
					}
					buf.Release(s, time.Microsecond)
				}
			}()
			key := []byte("benchkey")
			val := make([]byte, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := buf.Append(i%8, key, val); err != nil {
					b.Fatal(err)
				}
			}
			buf.Close()
			<-done
			b.SetBytes(RecordBytes(key, val))
		})
	}
}
