//go:build !mrdebug

package spillbuf

// Release-build no-op twins of the mrdebug invariant checks; see
// invariants.go for the real assertions.

func (b *Buffer) checkInvariants(string) {}

func (b *Buffer) checkPendingSum(string) {}
