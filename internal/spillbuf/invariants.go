//go:build mrdebug

package spillbuf

import "fmt"

// This file holds the debug-build invariant checks of the spill buffer.
// They compile in only under -tags mrdebug; the release build links the
// no-op twins in invariants_off.go, so the hot path pays nothing.

// checkInvariants asserts the buffer's O(1) structural invariants. The
// caller must hold b.mu.
func (b *Buffer) checkInvariants(where string) {
	if b.pendingBytes < 0 {
		panic(fmt.Sprintf("spillbuf: %s: negative pendingBytes %d", where, b.pendingBytes))
	}
	if b.inflight < 0 {
		panic(fmt.Sprintf("spillbuf: %s: negative inflight %d", where, b.inflight))
	}
	if (b.pending.Len() == 0) != (b.pendingBytes == 0) {
		panic(fmt.Sprintf("spillbuf: %s: pending region inconsistent: %d records, %d bytes",
			where, b.pending.Len(), b.pendingBytes))
	}
	if b.maxPending < b.pendingBytes {
		panic(fmt.Sprintf("spillbuf: %s: maxPending watermark %d below pendingBytes %d",
			where, b.maxPending, b.pendingBytes))
	}
	if b.seq != b.spills {
		panic(fmt.Sprintf("spillbuf: %s: seq %d != spills %d", where, b.seq, b.spills))
	}
	if b.inflight > b.spillBytes {
		panic(fmt.Sprintf("spillbuf: %s: inflight %d exceeds total spilled bytes %d",
			where, b.inflight, b.spillBytes))
	}
	// The byte budget M bounds pending+inflight, except for the single
	// oversized record the producer may admit into an empty buffer.
	if b.pendingBytes+b.inflight > b.capacity && b.pending.Len() > 1 {
		panic(fmt.Sprintf("spillbuf: %s: budget exceeded: pending %d + inflight %d > capacity %d with %d pending records",
			where, b.pendingBytes, b.inflight, b.capacity, b.pending.Len()))
	}
	if len(b.free) > maxFreeBatches {
		panic(fmt.Sprintf("spillbuf: %s: recycling pool holds %d batches, cap %d", where, len(b.free), maxFreeBatches))
	}
}

// checkPendingSum asserts the O(n) accounting invariants of the packed
// pending region: pendingBytes equals the sum of the records' charges,
// and every meta entry's payload lies inside the arena with the charge
// model's per-record overhead accounted. Called only at spill handoff so
// debug builds stay usable. The caller must hold b.mu.
func (b *Buffer) checkPendingSum(where string) {
	var sum int64
	for i := 0; i < b.pending.Len(); i++ {
		sum += RecordBytes(b.pending.Key(i), b.pending.Value(i))
	}
	if sum != b.pendingBytes {
		panic(fmt.Sprintf("spillbuf: %s: pendingBytes %d != record sum %d over %d records",
			where, b.pendingBytes, sum, b.pending.Len()))
	}
	if payload := b.pending.ArenaBytes(); sum != payload+int64(b.pending.Len())*recordOverhead {
		panic(fmt.Sprintf("spillbuf: %s: arena holds %d payload bytes, accounting expects %d",
			where, payload, sum-int64(b.pending.Len())*recordOverhead))
	}
}
