//go:build mrdebug

package spillbuf

import "fmt"

// This file holds the debug-build invariant checks of the spill buffer.
// They compile in only under -tags mrdebug; the release build links the
// no-op twins in invariants_off.go, so the hot path pays nothing.

// checkInvariants asserts the buffer's O(1) structural invariants. The
// caller must hold b.mu.
func (b *Buffer) checkInvariants(where string) {
	if b.pendingBytes < 0 {
		panic(fmt.Sprintf("spillbuf: %s: negative pendingBytes %d", where, b.pendingBytes))
	}
	if b.inflight < 0 {
		panic(fmt.Sprintf("spillbuf: %s: negative inflight %d", where, b.inflight))
	}
	if (len(b.pending) == 0) != (b.pendingBytes == 0) {
		panic(fmt.Sprintf("spillbuf: %s: pending region inconsistent: %d records, %d bytes",
			where, len(b.pending), b.pendingBytes))
	}
	if b.maxPending < b.pendingBytes {
		panic(fmt.Sprintf("spillbuf: %s: maxPending watermark %d below pendingBytes %d",
			where, b.maxPending, b.pendingBytes))
	}
	if b.seq != b.spills {
		panic(fmt.Sprintf("spillbuf: %s: seq %d != spills %d", where, b.seq, b.spills))
	}
	if b.inflight > b.spillBytes {
		panic(fmt.Sprintf("spillbuf: %s: inflight %d exceeds total spilled bytes %d",
			where, b.inflight, b.spillBytes))
	}
	// The byte budget M bounds pending+inflight, except for the single
	// oversized record the producer may admit into an empty buffer.
	if b.pendingBytes+b.inflight > b.capacity && len(b.pending) > 1 {
		panic(fmt.Sprintf("spillbuf: %s: budget exceeded: pending %d + inflight %d > capacity %d with %d pending records",
			where, b.pendingBytes, b.inflight, b.capacity, len(b.pending)))
	}
}

// checkPendingSum asserts the O(n) byte-accounting invariant: pendingBytes
// equals the sum of the pending records' charges. Called only at spill
// handoff so debug builds stay usable. The caller must hold b.mu.
func (b *Buffer) checkPendingSum(where string) {
	var sum int64
	for _, r := range b.pending {
		sum += RecordBytes(r.Key, r.Value)
	}
	if sum != b.pendingBytes {
		panic(fmt.Sprintf("spillbuf: %s: pendingBytes %d != record sum %d over %d records",
			where, b.pendingBytes, sum, len(b.pending)))
	}
}
