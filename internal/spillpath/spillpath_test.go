package spillpath

import "testing"

// TestHarnessSmoke runs both paths at a small scale with two
// iterations: the point is that every stage executes without error and
// produces sane numbers, not that the timings are stable.
func TestHarnessSmoke(t *testing.T) {
	sc, err := BenchScale(Config{Records: 2048, Parts: 3, Runs: 4, Iters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]Path{"baseline": sc.Baseline, "packed": sc.Packed} {
		for stage, s := range map[string]Stage{"append": p.Append, "sort": p.Sort, "spill": p.Spill, "merge": p.Merge} {
			if s.NsPerRecord <= 0 {
				t.Errorf("%s %s: non-positive ns/record %v", name, stage, s.NsPerRecord)
			}
			if s.AllocsPerRecord < 0 {
				t.Errorf("%s %s: negative allocs/record %v", name, stage, s.AllocsPerRecord)
			}
		}
	}
	if sc.SortSpeedup <= 0 || sc.MergeSpeedup <= 0 {
		t.Fatalf("speedups not computed: sort %v merge %v", sc.SortSpeedup, sc.MergeSpeedup)
	}
}

func TestEmitTimerOverhead(t *testing.T) {
	o := BenchEmitTimer(1<<14, 2)
	if o.PreciseClockReadsPerRec < 1.9 {
		t.Errorf("precise scheme should read the clock ~2x per record, got %v", o.PreciseClockReadsPerRec)
	}
	if o.SampledClockReadsPerRec > 0.2 {
		t.Errorf("sampled scheme should read the clock rarely, got %v per record", o.SampledClockReadsPerRec)
	}
}

func BenchmarkSpillPathSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BenchScale(Config{Records: 1024, Parts: 2, Runs: 4, Iters: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
