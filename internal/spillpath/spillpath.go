// Package spillpath is the regression harness for the map-side spill
// path: it measures the append → sort → spill → merge pipeline at
// several input scales, once through the pre-optimization baseline
// ([]kvio.Record with per-record copies, sort.SliceStable via
// kvio.SortRecords, and the container/heap ReferenceMerger) and once
// through the packed path (arena-packed kvio.PackedRecords, the prefix
// index sort kvio.SortPacked, and the loser-tree kvio.Merger). Both
// paths write byte-identical run files, so the comparison isolates the
// abstraction cost the packed layout removes.
//
// The harness is its own measurement loop rather than testing.Benchmark
// so the iteration count is configurable: cmd/mrbench -spillbench runs
// it long enough for stable numbers and writes BENCH_spillpath.json,
// while the package test runs a two-iteration smoke at a small scale.
// Per-stage figures are ns/record (minimum over iterations, the
// standard noise filter) and allocations/record (also the minimum, i.e.
// the steady state after internal buffers have grown).
package spillpath

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"time"

	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/vdisk"
)

// Config sizes one harness run.
type Config struct {
	Records int   // records per scale point
	Parts   int   // partitions (reducers)
	Runs    int   // spill runs merged in the merge stage
	Iters   int   // measurement iterations per stage (min is reported)
	Seed    int64 // workload generator seed
}

// DefaultScales are the record counts cmd/mrbench measures.
var DefaultScales = []int{8192, 65536, 524288}

// Stage is one pipeline stage's per-record cost.
type Stage struct {
	NsPerRecord     float64 `json:"ns_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// Path is the four-stage cost profile of one implementation.
type Path struct {
	Append Stage `json:"append"`
	Sort   Stage `json:"sort"`
	Spill  Stage `json:"spill"`
	Merge  Stage `json:"merge"`
	Total  Stage `json:"total"`
}

// Scale compares baseline and packed at one input size.
type Scale struct {
	Records      int     `json:"records"`
	Runs         int     `json:"runs"`
	Parts        int     `json:"parts"`
	Baseline     Path    `json:"baseline"`
	Packed       Path    `json:"packed"`
	SortSpeedup  float64 `json:"sort_speedup"`
	MergeSpeedup float64 `json:"merge_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`
}

// Overhead reports the emit-timer satellite: per-record cost of the
// precise (two clock reads per record) and sampled attribution schemes.
type Overhead struct {
	PreciseNsPerRecord      float64 `json:"precise_ns_per_record"`
	SampledNsPerRecord      float64 `json:"sampled_ns_per_record"`
	DeltaNsPerRecord        float64 `json:"delta_ns_per_record"`
	PreciseClockReadsPerRec float64 `json:"precise_clock_reads_per_record"`
	SampledClockReadsPerRec float64 `json:"sampled_clock_reads_per_record"`
}

// Report is the full harness output, serialized to BENCH_spillpath.json.
type Report struct {
	Note        string   `json:"note"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Scales      []Scale  `json:"scales"`
	EmitTimer   Overhead `json:"emit_timer"`
	GeneratedAt string   `json:"generated_at"`
}

// workload is a deterministic word-count-shaped input: Zipf-distributed
// keys over a shared-prefix vocabulary ("word/NNNNNNN", so most prefix
// comparisons tie on the first 8 bytes and stress the tie path), small
// numeric values, fnv partitioning.
type workload struct {
	parts []int
	keys  [][]byte
	vals  [][]byte
}

func generate(n, parts int, seed int64) *workload {
	r := rand.New(rand.NewSource(seed))
	vocab := n/8 + 16
	zipf := rand.NewZipf(r, 1.2, 1, uint64(vocab-1))
	w := &workload{
		parts: make([]int, n),
		keys:  make([][]byte, n),
		vals:  make([][]byte, n),
	}
	h := fnv.New32a()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("word/%07d", zipf.Uint64()))
		h.Reset()
		h.Write(k)
		w.keys[i] = k
		w.vals[i] = []byte("1")
		w.parts[i] = int(h.Sum32() % uint32(parts))
	}
	return w
}

// measure runs fn iters times (setup before each, untimed) and returns
// the per-record minimum of wall time and of malloc count.
func measure(n, iters int, setup, fn func()) Stage {
	bestNs := time.Duration(1<<63 - 1)
	bestAllocs := ^uint64(0)
	var before, after runtime.MemStats
	for i := 0; i < iters; i++ {
		setup()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		fn()
		dt := time.Since(t0)
		runtime.ReadMemStats(&after)
		if dt < bestNs {
			bestNs = dt
		}
		if a := after.Mallocs - before.Mallocs; a < bestAllocs {
			bestAllocs = a
		}
	}
	return Stage{
		NsPerRecord:     float64(bestNs.Nanoseconds()) / float64(n),
		AllocsPerRecord: float64(bestAllocs) / float64(n),
	}
}

func sum(stages ...Stage) Stage {
	var t Stage
	for _, s := range stages {
		t.NsPerRecord += s.NsPerRecord
		t.AllocsPerRecord += s.AllocsPerRecord
	}
	return t
}

// merger is the grouped-merge API both kvio.Merger and
// kvio.ReferenceMerger implement.
type merger interface {
	NextGroup() ([]byte, bool, error)
	NextValue() ([]byte, bool, error)
	Close() error
}

// drainMerge pulls every group and value out of m into out.
func drainMerge(m merger, part int, out kvio.RunSink) error {
	defer m.Close()
	for {
		key, ok, err := m.NextGroup()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for {
			v, ok, err := m.NextValue()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := out.Append(part, key, v); err != nil {
				return err
			}
		}
	}
}

// writeMergeRuns splits sorted records round-robin into cfg.Runs sorted
// run files (each keeps the global order, so every run is itself
// sorted) and returns the disk and indexes both merge stages read.
func writeMergeRuns(sorted []kvio.Record, cfg Config) (vdisk.Disk, []kvio.RunIndex, error) {
	disk := vdisk.NewMem()
	idxs := make([]kvio.RunIndex, cfg.Runs)
	for r := 0; r < cfg.Runs; r++ {
		w, err := kvio.NewRunSink(disk, fmt.Sprintf("run%d", r), cfg.Parts, false)
		if err != nil {
			return nil, nil, err
		}
		for i := r; i < len(sorted); i += cfg.Runs {
			if err := w.Append(sorted[i].Part, sorted[i].Key, sorted[i].Value); err != nil {
				return nil, nil, err
			}
		}
		idxs[r], err = w.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	return disk, idxs, nil
}

// benchMerge measures a k-way merge of the prepared runs across all
// partitions through the given merger constructor.
func benchMerge(disk vdisk.Disk, idxs []kvio.RunIndex, cfg Config, newMerger func([]kvio.Stream) (merger, error)) (Stage, error) {
	var stageErr error
	st := measure(cfg.Records, cfg.Iters, func() {}, func() {
		out, err := kvio.NewRunSink(vdisk.NewMem(), "merged", cfg.Parts, false)
		if err != nil {
			stageErr = err
			return
		}
		for p := 0; p < cfg.Parts; p++ {
			streams := make([]kvio.Stream, len(idxs))
			for j, idx := range idxs {
				s, err := kvio.OpenRunPart(disk, idx, p)
				if err != nil {
					stageErr = err
					return
				}
				streams[j] = s
			}
			m, err := newMerger(streams)
			if err != nil {
				stageErr = err
				return
			}
			if err := drainMerge(m, p, out); err != nil {
				stageErr = err
				return
			}
		}
		if _, err := out.Close(); err != nil {
			stageErr = err
		}
	})
	return st, stageErr
}

// benchBaseline measures the pre-optimization path.
func benchBaseline(w *workload, cfg Config) (Path, error) {
	n := cfg.Records
	var p Path

	// Append: one key copy and one value copy per record, as the old
	// spill buffer did.
	var recs []kvio.Record
	p.Append = measure(n, cfg.Iters, func() { recs = nil }, func() {
		recs = make([]kvio.Record, 0, n)
		for j := 0; j < n; j++ {
			recs = append(recs, kvio.Record{
				Part:  w.parts[j],
				Key:   append([]byte(nil), w.keys[j]...),
				Value: append([]byte(nil), w.vals[j]...),
			})
		}
	})

	// Sort: sort.SliceStable over the record slice.
	work := make([]kvio.Record, n)
	p.Sort = measure(n, cfg.Iters, func() { copy(work, recs) }, func() {
		kvio.SortRecords(work)
	})
	sorted := make([]kvio.Record, n)
	copy(sorted, work)

	// Spill: the writeSpillRun grouping loop (combine-free shape) into
	// an uncompressed run file.
	var spillErr error
	p.Spill = measure(n, cfg.Iters, func() {}, func() {
		rw, err := kvio.NewRunSink(vdisk.NewMem(), "spill", cfg.Parts, false)
		if err != nil {
			spillErr = err
			return
		}
		i := 0
		for i < len(sorted) {
			j := i + 1
			for j < len(sorted) && sorted[j].Part == sorted[i].Part && string(sorted[j].Key) == string(sorted[i].Key) {
				j++
			}
			for k := i; k < j; k++ {
				if err := rw.Append(sorted[k].Part, sorted[k].Key, sorted[k].Value); err != nil {
					spillErr = err
					return
				}
			}
			i = j
		}
		if _, err := rw.Close(); err != nil {
			spillErr = err
		}
	})
	if spillErr != nil {
		return p, spillErr
	}

	// Merge: container/heap reference merger.
	disk, idxs, err := writeMergeRuns(sorted, cfg)
	if err != nil {
		return p, err
	}
	p.Merge, err = benchMerge(disk, idxs, cfg, func(s []kvio.Stream) (merger, error) {
		return kvio.NewReferenceMerger(s)
	})
	if err != nil {
		return p, err
	}
	p.Total = sum(p.Append, p.Sort, p.Spill, p.Merge)
	return p, nil
}

// benchPacked measures the arena-packed path.
func benchPacked(w *workload, cfg Config) (Path, error) {
	n := cfg.Records
	var p Path

	// Append: packed into a reused arena, as the recycling spill buffer
	// does in steady state.
	var packed kvio.PackedRecords
	p.Append = measure(n, cfg.Iters, func() {}, func() {
		packed.Reset()
		for j := 0; j < n; j++ {
			packed.Append(w.parts[j], w.keys[j], w.vals[j])
		}
	})

	// Sort: the prefix index sort permutes only the meta array.
	work := kvio.PackedRecords{Meta: make([]kvio.Meta, n), Arena: packed.Arena}
	p.Sort = measure(n, cfg.Iters, func() { copy(work.Meta, packed.Meta) }, func() {
		kvio.SortPacked(work)
	})
	sortedPacked := kvio.PackedRecords{Meta: make([]kvio.Meta, n), Arena: packed.Arena}
	copy(sortedPacked.Meta, work.Meta)

	// Spill: the packed writeSpillRun grouping loop.
	var spillErr error
	p.Spill = measure(n, cfg.Iters, func() {}, func() {
		rw, err := kvio.NewRunSink(vdisk.NewMem(), "spill", cfg.Parts, false)
		if err != nil {
			spillErr = err
			return
		}
		i := 0
		for i < sortedPacked.Len() {
			j := i + 1
			for j < sortedPacked.Len() && sortedPacked.Meta[j].Part == sortedPacked.Meta[i].Part && sortedPacked.KeyEqual(i, j) {
				j++
			}
			for k := i; k < j; k++ {
				if err := rw.Append(sortedPacked.Part(k), sortedPacked.Key(k), sortedPacked.Value(k)); err != nil {
					spillErr = err
					return
				}
			}
			i = j
		}
		if _, err := rw.Close(); err != nil {
			spillErr = err
		}
	})
	if spillErr != nil {
		return p, spillErr
	}

	// Merge: loser-tree merger over the same run files the baseline
	// merged (the on-disk format is identical).
	sorted := make([]kvio.Record, n)
	for i := 0; i < n; i++ {
		sorted[i] = sortedPacked.Record(i)
	}
	disk, idxs, err := writeMergeRuns(sorted, cfg)
	if err != nil {
		return p, err
	}
	p.Merge, err = benchMerge(disk, idxs, cfg, func(s []kvio.Stream) (merger, error) {
		return kvio.NewMerger(s)
	})
	if err != nil {
		return p, err
	}
	p.Total = sum(p.Append, p.Sort, p.Spill, p.Merge)
	return p, nil
}

// BenchScale runs both paths at one scale.
func BenchScale(cfg Config) (Scale, error) {
	w := generate(cfg.Records, cfg.Parts, cfg.Seed)
	base, err := benchBaseline(w, cfg)
	if err != nil {
		return Scale{}, fmt.Errorf("spillpath: baseline at %d records: %w", cfg.Records, err)
	}
	packed, err := benchPacked(w, cfg)
	if err != nil {
		return Scale{}, fmt.Errorf("spillpath: packed at %d records: %w", cfg.Records, err)
	}
	return Scale{
		Records:      cfg.Records,
		Runs:         cfg.Runs,
		Parts:        cfg.Parts,
		Baseline:     base,
		Packed:       packed,
		SortSpeedup:  base.Sort.NsPerRecord / packed.Sort.NsPerRecord,
		MergeSpeedup: base.Merge.NsPerRecord / packed.Merge.NsPerRecord,
		TotalSpeedup: base.Total.NsPerRecord / packed.Total.NsPerRecord,
	}, nil
}

// BenchEmitTimer measures the collector-attribution satellite: the
// per-record cost and clock traffic of precise (period 1) vs. sampled
// (default period) emit timing around a no-op emit.
func BenchEmitTimer(records, iters int) Overhead {
	run := func(period int64) (Stage, float64) {
		var clocksPerRec float64
		st := measure(records, iters, func() {}, func() {
			tm := metrics.NewTaskMetrics()
			et := metrics.NewEmitTimer(tm, metrics.DefaultEmitWarmup, period)
			for i := 0; i < records; i++ {
				et.BeforeEmit()
				et.AfterEmit()
			}
			et.Finish()
			clocksPerRec = float64(et.ClockReads()) / float64(records)
		})
		return st, clocksPerRec
	}
	precise, preciseClocks := run(1)
	sampled, sampledClocks := run(metrics.DefaultEmitPeriod)
	return Overhead{
		PreciseNsPerRecord:      precise.NsPerRecord,
		SampledNsPerRecord:      sampled.NsPerRecord,
		DeltaNsPerRecord:        precise.NsPerRecord - sampled.NsPerRecord,
		PreciseClockReadsPerRec: preciseClocks,
		SampledClockReadsPerRec: sampledClocks,
	}
}

// Run executes the full harness: every scale plus the emit-timer
// overhead measurement.
func Run(scales []int, parts, runs, iters int, seed int64) (Report, error) {
	rep := Report{
		Note: "map-side spill path: baseline ([]Record copies + sort.SliceStable + heap merge) " +
			"vs packed (arena + prefix index sort + loser tree); ns and allocs are min over iterations, per record",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, n := range scales {
		sc, err := BenchScale(Config{Records: n, Parts: parts, Runs: runs, Iters: iters, Seed: seed})
		if err != nil {
			return rep, err
		}
		rep.Scales = append(rep.Scales, sc)
	}
	rep.EmitTimer = BenchEmitTimer(1<<16, iters)
	return rep, nil
}
