package dfs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"mrtext/internal/fabric"
	"mrtext/internal/vdisk"
)

func newDFS(t *testing.T, nodes int, blockSize int64, replication int) (*DFS, []vdisk.Disk) {
	t.Helper()
	disks := make([]vdisk.Disk, nodes)
	for i := range disks {
		disks[i] = vdisk.NewMem()
	}
	net, err := fabric.New(nodes, fabric.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(disks, net, blockSize, replication)
	if err != nil {
		t.Fatal(err)
	}
	return d, disks
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 1024, 1); err == nil {
		t.Error("no disks accepted")
	}
	if _, err := New([]vdisk.Disk{vdisk.NewMem()}, nil, 0, 1); err == nil {
		t.Error("zero block size accepted")
	}
	// Replication above the node count is clamped, not an error.
	d, err := New([]vdisk.Disk{vdisk.NewMem()}, nil, 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	blocks, _ := d.Blocks("f")
	if len(blocks[0].Replicas) != 1 {
		t.Errorf("replicas %v on a 1-node DFS", blocks[0].Replicas)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, _ := newDFS(t, 3, 100, 2)
	data := bytes.Repeat([]byte("0123456789"), 35) // 350 bytes → 4 blocks
	if err := d.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	size, err := d.Size("f")
	if err != nil || size != int64(len(data)) {
		t.Errorf("size %d err %v", size, err)
	}
	blocks, err := d.Blocks("f")
	if err != nil || len(blocks) != 4 {
		t.Fatalf("blocks %v err %v", blocks, err)
	}
	if blocks[3].Len != 50 {
		t.Errorf("final block len %d", blocks[3].Len)
	}
	for i, b := range blocks {
		if b.Index != i || len(b.Replicas) != 2 || b.Replicas[0] == b.Replicas[1] {
			t.Errorf("block %d: %+v", i, b)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw []byte, blockRaw uint8) bool {
		blockSize := int64(blockRaw%64) + 1
		d, _ := newDFS(t, 2, blockSize, 1)
		if err := d.WriteFile("f", raw); err != nil {
			return false
		}
		got, err := d.ReadFile("f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpenFromOffsets(t *testing.T) {
	d, _ := newDFS(t, 3, 16, 1)
	data := []byte("The quick brown fox jumps over the lazy dog and runs away")
	if err := d.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		off := int64(rng.Intn(len(data) + 1))
		for node := 0; node < 3; node++ {
			r, err := d.OpenFrom("f", node, off)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			r.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data[off:]) {
				t.Fatalf("offset %d node %d: got %q want %q", off, node, got, data[off:])
			}
		}
	}
}

func TestReadCrossesBlocks(t *testing.T) {
	d, _ := newDFS(t, 2, 8, 1)
	data := bytes.Repeat([]byte("abcdefgh"), 10)
	if err := d.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	r, err := d.OpenFrom("f", 0, 4) // mid-block start
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Read in odd-sized chunks to force block transitions mid-Read.
	var got []byte
	buf := make([]byte, 13)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data[4:]) {
		t.Error("cross-block read mismatch")
	}
}

func TestMissingAndUnsealed(t *testing.T) {
	d, _ := newDFS(t, 2, 64, 1)
	if _, err := d.Blocks("missing"); err == nil {
		t.Error("blocks of missing file")
	}
	if _, err := d.OpenFrom("missing", 0, 0); err == nil {
		t.Error("open of missing file")
	}
	if d.Exists("missing") {
		t.Error("missing file exists")
	}
	w, err := d.Create("pending", 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("x"))
	if d.Exists("pending") {
		t.Error("unsealed file exists")
	}
	if _, err := d.OpenFrom("pending", 0, 0); err == nil {
		t.Error("opened unsealed file")
	}
	w.Close()
	if !d.Exists("pending") {
		t.Error("sealed file missing")
	}
	// Duplicate create.
	if _, err := d.Create("pending", 0); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestRemoveCleansBlocks(t *testing.T) {
	d, disks := newDFS(t, 2, 16, 2)
	if err := d.WriteFile("f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("f") {
		t.Error("file exists after remove")
	}
	for i, disk := range disks {
		if files := disk.(*vdisk.Mem).List(); len(files) != 0 {
			t.Errorf("node %d still holds blocks: %v", i, files)
		}
	}
	if err := d.Remove("f"); err == nil {
		t.Error("double remove accepted")
	}
}

func TestLocalReplicaPreferred(t *testing.T) {
	// Reading from a node that holds a replica must not touch the fabric.
	disks := []vdisk.Disk{vdisk.NewMem(), vdisk.NewMem(), vdisk.NewMem()}
	net, _ := fabric.New(3, fabric.Config{})
	d, err := New(disks, net, 1<<10, 3) // replicate everywhere
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("f", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	before := net.Stats().BytesMoved
	for node := 0; node < 3; node++ {
		r, err := d.OpenFrom("f", node, 0)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r)
		r.Close()
	}
	if moved := net.Stats().BytesMoved - before; moved != 0 {
		t.Errorf("local reads moved %d bytes across the fabric", moved)
	}
}

func TestRemoteReadCharged(t *testing.T) {
	disks := []vdisk.Disk{vdisk.NewMem(), vdisk.NewMem()}
	net, _ := fabric.New(2, fabric.Config{})
	d, err := New(disks, net, 1<<10, 1) // single replica
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("f", make([]byte, 3000)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := d.Blocks("f")
	// Find a node that holds nothing of block 0.
	remote := 1 - blocks[0].Replicas[0]
	// Read everything from the remote node: at least the non-local blocks
	// must be charged.
	r, err := d.OpenFrom("f", remote, 0)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r)
	r.Close()
	if net.Stats().BytesMoved == 0 {
		t.Error("remote read not charged through the fabric")
	}
}

func TestWriterPrimaryPlacement(t *testing.T) {
	d, _ := newDFS(t, 4, 32, 2)
	w, err := d.Create("f", 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(make([]byte, 100))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blocks, _ := d.Blocks("f")
	for _, b := range blocks {
		if b.Replicas[0] != 2 {
			t.Errorf("block %d primary %d, want writer node 2", b.Index, b.Replicas[0])
		}
	}
}

func TestEmptyFile(t *testing.T) {
	d, _ := newDFS(t, 2, 64, 1)
	if err := d.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty file: %q err %v", got, err)
	}
	blocks, _ := d.Blocks("empty")
	if len(blocks) != 0 {
		t.Errorf("empty file has %d blocks", len(blocks))
	}
}
