// Package dfs implements the distributed-filesystem substrate the jobs read
// their input from and write their output to — a miniature HDFS: files are
// split into fixed-size blocks, each block is replicated onto the local
// disks of `replication` distinct nodes (placed round-robin), and readers
// prefer a local replica, paying a fabric transfer for remote blocks.
//
// Block locations drive the runtime's input-split placement, so map tasks
// are data-local exactly as in Hadoop, and final job output lands on the
// reducer's node first — the properties the paper's cluster experiments
// assume.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"mrtext/internal/fabric"
	"mrtext/internal/vdisk"
)

// BlockInfo describes one block of a file.
type BlockInfo struct {
	Index    int
	Offset   int64 // byte offset of the block within the file
	Len      int64
	Replicas []int // node ids holding a copy, primary first
}

type fileMeta struct {
	blocks []BlockInfo
	size   int64
	sealed bool
}

// DFS is the filesystem. Safe for concurrent use.
type DFS struct {
	disks       []vdisk.Disk
	net         *fabric.Fabric
	blockSize   int64
	replication int

	mu      sync.Mutex
	files   map[string]*fileMeta
	nextPri int // round-robin primary placement cursor
}

// New creates a DFS over the given per-node disks. net may be nil, in
// which case remote reads are uncharged (single-node setups).
func New(disks []vdisk.Disk, net *fabric.Fabric, blockSize int64, replication int) (*DFS, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("dfs: need at least one node disk")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %d", blockSize)
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > len(disks) {
		replication = len(disks)
	}
	return &DFS{
		disks:       disks,
		net:         net,
		blockSize:   blockSize,
		replication: replication,
		files:       make(map[string]*fileMeta),
	}, nil
}

// Nodes returns the number of storage nodes.
func (d *DFS) Nodes() int { return len(d.disks) }

// BlockSize returns the block size.
func (d *DFS) BlockSize() int64 { return d.blockSize }

func blockName(file string, idx, replica int) string {
	return fmt.Sprintf("dfs/%s/blk%06d/r%d", file, idx, replica)
}

// Create opens a new file for writing from the given node. The primary
// replica of each block is placed round-robin starting near the writer.
func (d *DFS) Create(name string, writerNode int) (io.WriteCloser, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("dfs: %w: %s", vdisk.ErrExist, name)
	}
	d.files[name] = &fileMeta{}
	return &writer{dfs: d, name: name, node: writerNode}, nil
}

// writer buffers up to one block and seals blocks as they fill.
type writer struct {
	dfs    *DFS
	name   string
	node   int
	buf    []byte
	closed bool
	err    error
}

func (w *writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, vdisk.ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	n := len(p)
	for len(p) > 0 {
		space := int(w.dfs.blockSize) - len(w.buf)
		take := len(p)
		if take > space {
			take = space
		}
		w.buf = append(w.buf, p[:take]...)
		p = p[take:]
		if int64(len(w.buf)) == w.dfs.blockSize {
			if err := w.seal(); err != nil {
				w.err = err
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// seal writes the buffered block to its replica disks and records it.
// The primary replica is mandatory — if the writer's own node cannot
// store the block, the write fails. Secondary replicas are best-effort:
// a candidate that fails (e.g. a node killed by chaos) is skipped and
// the next untried node takes its place, so node death degrades the
// replication of in-flight writes instead of failing the job — the
// HDFS pipeline-recovery behavior.
func (w *writer) seal() error {
	d := w.dfs
	d.mu.Lock()
	primary := w.node
	if primary < 0 || primary >= len(d.disks) {
		primary = d.nextPri % len(d.disks)
	}
	// Planned placement: primary on the writer's node (data locality for
	// output), secondaries round-robin. The cursor advances exactly as if
	// every candidate succeeded, so placement is unchanged on the
	// fault-free path.
	planned := []int{primary}
	cursor := d.nextPri
	for len(planned) < d.replication {
		cand := cursor % len(d.disks)
		cursor++
		dup := false
		for _, r := range planned {
			if r == cand {
				dup = true
				break
			}
		}
		if !dup {
			planned = append(planned, cand)
		}
	}
	d.nextPri = cursor + 1
	meta := d.files[w.name]
	idx := len(meta.blocks)
	d.mu.Unlock()

	if err := w.writeReplica(idx, 0, primary, false); err != nil {
		return fmt.Errorf("dfs: sealing block %d of %s: %w", idx, w.name, err)
	}
	replicas := []int{primary}
	tried := map[int]bool{primary: true}
	// Fallback candidate order: the planned secondaries, then every other
	// node round-robin from where the plan stopped.
	candidates := append([]int(nil), planned[1:]...)
	for i := 0; i < len(d.disks); i++ {
		candidates = append(candidates, (cursor+i)%len(d.disks))
	}
	for _, cand := range candidates {
		if len(replicas) >= d.replication {
			break
		}
		if tried[cand] {
			continue
		}
		tried[cand] = true
		if err := w.writeReplica(idx, len(replicas), cand, true); err != nil {
			continue // degraded replication: skip the failed candidate
		}
		replicas = append(replicas, cand)
	}

	info := BlockInfo{Index: idx, Len: int64(len(w.buf)), Replicas: replicas}
	d.mu.Lock()
	meta = d.files[w.name]
	info.Index = len(meta.blocks)
	info.Offset = meta.size
	meta.blocks = append(meta.blocks, info)
	meta.size += info.Len
	d.mu.Unlock()
	w.buf = w.buf[:0]
	return nil
}

// writeReplica stores the buffered block as replica ri on node, charging
// the fabric for non-primary placements. On any failure the partial block
// file is removed so the name can be reused.
func (w *writer) writeReplica(idx, ri, node int, remote bool) error {
	d := w.dfs
	name := blockName(w.name, idx, ri)
	f, err := d.disks[node].Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(w.buf); err != nil {
		//mrlint:ignore droppederr best-effort cleanup; the write error below is what the caller acts on
		_ = d.disks[node].Remove(name)
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		//mrlint:ignore droppederr best-effort cleanup; the close error below is what the caller acts on
		_ = d.disks[node].Remove(name)
		return err
	}
	if remote && d.net != nil {
		if err := d.net.Transfer(w.node, node, int64(len(w.buf))); err != nil {
			//mrlint:ignore droppederr best-effort cleanup; the transfer error below is what the caller acts on
			_ = d.disks[node].Remove(name)
			return err
		}
	}
	return nil
}

func (w *writer) Close() error {
	if w.closed {
		return vdisk.ErrClosed
	}
	if len(w.buf) > 0 {
		if err := w.seal(); err != nil {
			return err
		}
	}
	w.closed = true
	w.dfs.mu.Lock()
	w.dfs.files[w.name].sealed = true
	w.dfs.mu.Unlock()
	return w.err
}

// Blocks returns the block layout of a sealed file.
func (d *DFS) Blocks(name string) ([]BlockInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	if !ok || !meta.sealed {
		return nil, fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, name)
	}
	out := make([]BlockInfo, len(meta.blocks))
	copy(out, meta.blocks)
	return out, nil
}

// Size returns the byte size of a sealed file.
func (d *DFS) Size(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	if !ok || !meta.sealed {
		return 0, fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, name)
	}
	return meta.size, nil
}

// Exists reports whether a sealed file exists.
func (d *DFS) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	return ok && meta.sealed
}

// Remove deletes a sealed file and its blocks.
func (d *DFS) Remove(name string) error {
	d.mu.Lock()
	meta, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, name)
	}
	delete(d.files, name)
	blocks := meta.blocks
	d.mu.Unlock()
	var errs []error
	for _, b := range blocks {
		for ri, node := range b.Replicas {
			if err := d.disks[node].Remove(blockName(name, b.Index, ri)); err != nil {
				errs = append(errs, fmt.Errorf("dfs: removing block %d of %s: %w", b.Index, name, err))
			}
		}
	}
	return errors.Join(errs...)
}

// Rename atomically renames a sealed file, failing with vdisk.ErrExist
// when the destination name already exists — the cross-node half of the
// runtime's first-committer-wins attempt commit. Replicas whose disks fail
// the rename (dead nodes) are dropped from the block's replica set; the
// rename fails, rolled back, only if some block loses its last replica.
func (d *DFS) Rename(oldName, newName string) error {
	d.mu.Lock()
	meta, ok := d.files[oldName]
	if !ok || !meta.sealed {
		d.mu.Unlock()
		return fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, oldName)
	}
	if _, ok := d.files[newName]; ok {
		d.mu.Unlock()
		return fmt.Errorf("dfs: %w: %s", vdisk.ErrExist, newName)
	}
	// Reserve the destination (unsealed placeholder) so a concurrent
	// rename of a rival attempt's file loses with ErrExist.
	d.files[newName] = &fileMeta{}
	d.mu.Unlock()

	// A sealed file's block list is immutable, so it is safe to walk
	// without the lock.
	type move struct {
		node     int
		from, to string
	}
	var done []move
	newBlocks := make([]BlockInfo, 0, len(meta.blocks))
	var failed error
	for _, b := range meta.blocks {
		var kept []int
		for ri, node := range b.Replicas {
			from := blockName(oldName, b.Index, ri)
			to := blockName(newName, b.Index, len(kept))
			if err := d.disks[node].Rename(from, to); err != nil {
				failed = err // dead replica: drop it
				continue
			}
			done = append(done, move{node: node, from: from, to: to})
			kept = append(kept, node)
		}
		if len(kept) == 0 {
			// Block lost entirely: roll back what was renamed so the file
			// survives under its old name (minus the dead replicas).
			for _, m := range done {
				//mrlint:ignore droppederr best-effort rollback of a rename that already succeeded; the lost-block error below wins
				_ = d.disks[m.node].Rename(m.to, m.from)
			}
			d.mu.Lock()
			delete(d.files, newName)
			d.mu.Unlock()
			return fmt.Errorf("dfs: renaming %s: block %d has no live replica: %w", oldName, b.Index, failed)
		}
		nb := b
		nb.Replicas = kept
		newBlocks = append(newBlocks, nb)
	}

	d.mu.Lock()
	nm := d.files[newName]
	nm.blocks = newBlocks
	nm.size = meta.size
	nm.sealed = true
	delete(d.files, oldName)
	d.mu.Unlock()
	return nil
}

// OpenFrom opens the file for sequential reading from byte offset off, as
// seen by readerNode: each block is served from a local replica when one
// exists, otherwise from the nearest replica across the fabric.
func (d *DFS) OpenFrom(name string, readerNode int, off int64) (io.ReadCloser, error) {
	blocks, err := d.Blocks(name)
	if err != nil {
		return nil, err
	}
	return &reader{dfs: d, name: name, node: readerNode, blocks: blocks, off: off, triedIdx: -1}, nil
}

// reader streams a file block by block. When a replica fails — at open or
// mid-stream, as when its node dies — the reader fails over to the next
// untried replica of the same block, resuming at the exact byte position.
// A read fails only when every replica of a block is unreachable.
type reader struct {
	dfs      *DFS
	name     string
	node     int
	blocks   []BlockInfo
	off      int64
	cur      io.ReadCloser
	closed   bool
	tried    map[int]bool // replica indexes already tried for block triedIdx
	triedIdx int          // block Index the tried set applies to
	lastErr  error
}

func (r *reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, vdisk.ErrClosed
	}
	for {
		if r.cur != nil {
			n, err := r.cur.Read(p)
			if err == io.EOF {
				r.off += int64(n)
				cerr := r.cur.Close()
				r.cur = nil
				if cerr != nil {
					return n, fmt.Errorf("dfs: closing block stream of %s: %w", r.name, cerr)
				}
				if n > 0 {
					return n, nil
				}
				continue
			}
			if err != nil {
				// Replica failed mid-stream. The bytes from this read were
				// never delivered, so discard them (r.off stays put) and
				// fail over to another replica from the same position.
				//mrlint:ignore droppederr the replica already failed; its close error adds nothing to the failover
				_ = r.cur.Close()
				r.cur = nil
				r.lastErr = err
				continue
			}
			r.off += int64(n)
			return n, nil
		}
		// Find the block containing r.off.
		var blk *BlockInfo
		for i := range r.blocks {
			b := &r.blocks[i]
			if r.off >= b.Offset && r.off < b.Offset+b.Len {
				blk = b
				break
			}
		}
		if blk == nil {
			return 0, io.EOF
		}
		if blk.Index != r.triedIdx {
			r.triedIdx = blk.Index
			r.tried = nil
			r.lastErr = nil
		}
		within := r.off - blk.Offset
		opened := false
		for _, ri := range r.replicaOrder(blk) {
			if r.tried[ri] {
				continue
			}
			if r.tried == nil {
				r.tried = make(map[int]bool)
			}
			// Marked tried up front so a mid-stream failure moves on to the
			// NEXT replica instead of retrying this one forever.
			r.tried[ri] = true
			src := blk.Replicas[ri]
			rc, err := r.dfs.disks[src].OpenSection(blockName(r.name, blk.Index, ri), within, blk.Len-within)
			if err != nil {
				r.lastErr = err
				continue
			}
			if src != r.node && r.dfs.net != nil {
				rc = &chargedReader{rc: rc, net: r.dfs.net, src: src, dst: r.node}
			}
			r.cur = rc
			opened = true
			break
		}
		if !opened {
			return 0, fmt.Errorf("dfs: no live replica for block %d of %s: %w", blk.Index, r.name, r.lastErr)
		}
	}
}

// replicaOrder returns the replica indexes of b in read-preference order:
// local replicas first, then the rest primary-first.
func (r *reader) replicaOrder(b *BlockInfo) []int {
	order := make([]int, 0, len(b.Replicas))
	for ri, n := range b.Replicas {
		if n == r.node {
			order = append(order, ri)
		}
	}
	for ri, n := range b.Replicas {
		if n != r.node {
			order = append(order, ri)
		}
	}
	return order
}

func (r *reader) Close() error {
	if r.closed {
		return vdisk.ErrClosed
	}
	r.closed = true
	if r.cur != nil {
		return r.cur.Close()
	}
	return nil
}

// chargedReader meters remote block reads through the fabric.
type chargedReader struct {
	rc  io.ReadCloser
	net *fabric.Fabric
	src int
	dst int
}

func (c *chargedReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 {
		if terr := c.net.Transfer(c.src, c.dst, int64(n)); terr != nil && err == nil {
			err = terr
		}
	}
	return n, err
}

func (c *chargedReader) Close() error { return c.rc.Close() }

// WriteFile is a convenience that writes data as one DFS file from node 0.
func (d *DFS) WriteFile(name string, data []byte) error {
	w, err := d.Create(name, 0)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return errors.Join(err, w.Close())
	}
	return w.Close()
}

// ReadFile is a convenience that reads a whole DFS file from node 0.
func (d *DFS) ReadFile(name string) ([]byte, error) {
	r, err := d.OpenFrom(name, 0, 0)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
