// Package dfs implements the distributed-filesystem substrate the jobs read
// their input from and write their output to — a miniature HDFS: files are
// split into fixed-size blocks, each block is replicated onto the local
// disks of `replication` distinct nodes (placed round-robin), and readers
// prefer a local replica, paying a fabric transfer for remote blocks.
//
// Block locations drive the runtime's input-split placement, so map tasks
// are data-local exactly as in Hadoop, and final job output lands on the
// reducer's node first — the properties the paper's cluster experiments
// assume.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"mrtext/internal/fabric"
	"mrtext/internal/vdisk"
)

// BlockInfo describes one block of a file.
type BlockInfo struct {
	Index    int
	Offset   int64 // byte offset of the block within the file
	Len      int64
	Replicas []int // node ids holding a copy, primary first
}

type fileMeta struct {
	blocks []BlockInfo
	size   int64
	sealed bool
}

// DFS is the filesystem. Safe for concurrent use.
type DFS struct {
	disks       []vdisk.Disk
	net         *fabric.Fabric
	blockSize   int64
	replication int

	mu      sync.Mutex
	files   map[string]*fileMeta
	nextPri int // round-robin primary placement cursor
}

// New creates a DFS over the given per-node disks. net may be nil, in
// which case remote reads are uncharged (single-node setups).
func New(disks []vdisk.Disk, net *fabric.Fabric, blockSize int64, replication int) (*DFS, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("dfs: need at least one node disk")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %d", blockSize)
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > len(disks) {
		replication = len(disks)
	}
	return &DFS{
		disks:       disks,
		net:         net,
		blockSize:   blockSize,
		replication: replication,
		files:       make(map[string]*fileMeta),
	}, nil
}

// Nodes returns the number of storage nodes.
func (d *DFS) Nodes() int { return len(d.disks) }

// BlockSize returns the block size.
func (d *DFS) BlockSize() int64 { return d.blockSize }

func blockName(file string, idx, replica int) string {
	return fmt.Sprintf("dfs/%s/blk%06d/r%d", file, idx, replica)
}

// Create opens a new file for writing from the given node. The primary
// replica of each block is placed round-robin starting near the writer.
func (d *DFS) Create(name string, writerNode int) (io.WriteCloser, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("dfs: %w: %s", vdisk.ErrExist, name)
	}
	d.files[name] = &fileMeta{}
	return &writer{dfs: d, name: name, node: writerNode}, nil
}

// writer buffers up to one block and seals blocks as they fill.
type writer struct {
	dfs    *DFS
	name   string
	node   int
	buf    []byte
	closed bool
	err    error
}

func (w *writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, vdisk.ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	n := len(p)
	for len(p) > 0 {
		space := int(w.dfs.blockSize) - len(w.buf)
		take := len(p)
		if take > space {
			take = space
		}
		w.buf = append(w.buf, p[:take]...)
		p = p[take:]
		if int64(len(w.buf)) == w.dfs.blockSize {
			if err := w.seal(); err != nil {
				w.err = err
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// seal writes the buffered block to its replica disks and records it.
func (w *writer) seal() error {
	d := w.dfs
	d.mu.Lock()
	meta := d.files[w.name]
	idx := len(meta.blocks)
	// Primary on the writer's node (data locality for output), remaining
	// replicas round-robin.
	replicas := make([]int, 0, d.replication)
	primary := w.node
	if primary < 0 || primary >= len(d.disks) {
		primary = d.nextPri % len(d.disks)
	}
	replicas = append(replicas, primary)
	cursor := d.nextPri
	for len(replicas) < d.replication {
		cand := cursor % len(d.disks)
		cursor++
		dup := false
		for _, r := range replicas {
			if r == cand {
				dup = true
				break
			}
		}
		if !dup {
			replicas = append(replicas, cand)
		}
	}
	d.nextPri = cursor + 1
	info := BlockInfo{Index: idx, Offset: meta.size, Len: int64(len(w.buf)), Replicas: replicas}
	meta.blocks = append(meta.blocks, info)
	meta.size += info.Len
	d.mu.Unlock()

	for ri, node := range replicas {
		f, err := d.disks[node].Create(blockName(w.name, idx, ri))
		if err != nil {
			return fmt.Errorf("dfs: sealing block %d of %s: %w", idx, w.name, err)
		}
		if _, err := f.Write(w.buf); err != nil {
			return fmt.Errorf("dfs: writing block %d of %s: %w", idx, w.name, errors.Join(err, f.Close()))
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("dfs: closing block %d of %s: %w", idx, w.name, err)
		}
		// Replica placement crosses the network.
		if ri > 0 && d.net != nil {
			if err := d.net.Transfer(w.node, node, info.Len); err != nil {
				return err
			}
		}
	}
	w.buf = w.buf[:0]
	return nil
}

func (w *writer) Close() error {
	if w.closed {
		return vdisk.ErrClosed
	}
	if len(w.buf) > 0 {
		if err := w.seal(); err != nil {
			return err
		}
	}
	w.closed = true
	w.dfs.mu.Lock()
	w.dfs.files[w.name].sealed = true
	w.dfs.mu.Unlock()
	return w.err
}

// Blocks returns the block layout of a sealed file.
func (d *DFS) Blocks(name string) ([]BlockInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	if !ok || !meta.sealed {
		return nil, fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, name)
	}
	out := make([]BlockInfo, len(meta.blocks))
	copy(out, meta.blocks)
	return out, nil
}

// Size returns the byte size of a sealed file.
func (d *DFS) Size(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	if !ok || !meta.sealed {
		return 0, fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, name)
	}
	return meta.size, nil
}

// Exists reports whether a sealed file exists.
func (d *DFS) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.files[name]
	return ok && meta.sealed
}

// Remove deletes a sealed file and its blocks.
func (d *DFS) Remove(name string) error {
	d.mu.Lock()
	meta, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("dfs: %w: %s", vdisk.ErrNotExist, name)
	}
	delete(d.files, name)
	blocks := meta.blocks
	d.mu.Unlock()
	var errs []error
	for _, b := range blocks {
		for ri, node := range b.Replicas {
			if err := d.disks[node].Remove(blockName(name, b.Index, ri)); err != nil {
				errs = append(errs, fmt.Errorf("dfs: removing block %d of %s: %w", b.Index, name, err))
			}
		}
	}
	return errors.Join(errs...)
}

// OpenFrom opens the file for sequential reading from byte offset off, as
// seen by readerNode: each block is served from a local replica when one
// exists, otherwise from the nearest replica across the fabric.
func (d *DFS) OpenFrom(name string, readerNode int, off int64) (io.ReadCloser, error) {
	blocks, err := d.Blocks(name)
	if err != nil {
		return nil, err
	}
	return &reader{dfs: d, name: name, node: readerNode, blocks: blocks, off: off}, nil
}

// reader streams a file block by block.
type reader struct {
	dfs    *DFS
	name   string
	node   int
	blocks []BlockInfo
	off    int64
	cur    io.ReadCloser
	curEnd int64 // file offset where the current block stream ends
	closed bool
}

func (r *reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, vdisk.ErrClosed
	}
	for {
		if r.cur != nil {
			n, err := r.cur.Read(p)
			r.off += int64(n)
			if err == io.EOF {
				cerr := r.cur.Close()
				r.cur = nil
				if cerr != nil {
					return n, fmt.Errorf("dfs: closing block stream of %s: %w", r.name, cerr)
				}
				if n > 0 {
					return n, nil
				}
				continue
			}
			return n, err
		}
		// Find the block containing r.off.
		var blk *BlockInfo
		for i := range r.blocks {
			b := &r.blocks[i]
			if r.off >= b.Offset && r.off < b.Offset+b.Len {
				blk = b
				break
			}
		}
		if blk == nil {
			return 0, io.EOF
		}
		within := r.off - blk.Offset
		src, replica := r.pickReplica(blk)
		rc, err := r.dfs.disks[src].OpenSection(blockName(r.name, blk.Index, replica), within, blk.Len-within)
		if err != nil {
			return 0, fmt.Errorf("dfs: opening block %d of %s: %w", blk.Index, r.name, err)
		}
		if src != r.node && r.dfs.net != nil {
			rc = &chargedReader{rc: rc, net: r.dfs.net, src: src, dst: r.node}
		}
		r.cur = rc
		r.curEnd = blk.Offset + blk.Len
	}
}

// pickReplica chooses the replica to read: local if available, else the
// primary. It returns the node and the replica index on that node.
func (r *reader) pickReplica(b *BlockInfo) (node, replica int) {
	for ri, n := range b.Replicas {
		if n == r.node {
			return n, ri
		}
	}
	return b.Replicas[0], 0
}

func (r *reader) Close() error {
	if r.closed {
		return vdisk.ErrClosed
	}
	r.closed = true
	if r.cur != nil {
		return r.cur.Close()
	}
	return nil
}

// chargedReader meters remote block reads through the fabric.
type chargedReader struct {
	rc  io.ReadCloser
	net *fabric.Fabric
	src int
	dst int
}

func (c *chargedReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 {
		if terr := c.net.Transfer(c.src, c.dst, int64(n)); terr != nil && err == nil {
			err = terr
		}
	}
	return n, err
}

func (c *chargedReader) Close() error { return c.rc.Close() }

// WriteFile is a convenience that writes data as one DFS file from node 0.
func (d *DFS) WriteFile(name string, data []byte) error {
	w, err := d.Create(name, 0)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return errors.Join(err, w.Close())
	}
	return w.Close()
}

// ReadFile is a convenience that reads a whole DFS file from node 0.
func (d *DFS) ReadFile(name string) ([]byte, error) {
	r, err := d.OpenFrom(name, 0, 0)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
