// Package pprofserve wires the standard net/http/pprof and expvar
// handlers plus a live mrtext metrics snapshot onto one debug address,
// shared by the mrrun and mrbench CLIs (-pprof flag). The same address
// also serves /metrics, the Prometheus text exposition of the live
// operation totals, wait counters, and latency histograms.
package pprofserve

import (
	"expvar"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"sync"

	"mrtext/internal/metrics"
)

var publishOnce sync.Once

// Handler enables live metrics aggregation, publishes it as the
// "mrtext.metrics" expvar (visible at /debug/vars) and as the /metrics
// Prometheus text endpoint, and returns DefaultServeMux — which carries
// /debug/pprof, /debug/vars, and /metrics. Servers with their own mux
// (mrserve) mount this under /debug/ instead of running a second
// listener.
func Handler() http.Handler {
	metrics.EnableLive()
	publishOnce.Do(func() {
		expvar.Publish("mrtext.metrics", expvar.Func(metrics.LiveVars))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			//mrlint:ignore droppederr a failed exposition write means the scrape client went away; nothing to report
			_ = metrics.WritePrometheus(w)
		})
	})
	return http.DefaultServeMux
}

// Serve wires Handler's endpoints and serves them on addr in a background
// goroutine. A listen or serve failure is reported to onErr; Serve itself
// never blocks.
func Serve(addr string, onErr func(error)) {
	h := Handler()
	//mrlint:ignore goroleak debug server lives for the whole process; it has no shutdown path by design
	go func() {
		if err := http.ListenAndServe(addr, h); err != nil {
			onErr(err)
		}
	}()
}
