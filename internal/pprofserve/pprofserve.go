// Package pprofserve wires the standard net/http/pprof and expvar
// handlers plus a live mrtext metrics snapshot onto one debug address,
// shared by the mrrun and mrbench CLIs (-pprof flag).
package pprofserve

import (
	"expvar"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"sync"

	"mrtext/internal/metrics"
)

var publishOnce sync.Once

// Serve enables live metrics aggregation, publishes it as the
// "mrtext.metrics" expvar (visible at /debug/vars), and serves
// DefaultServeMux — which carries /debug/pprof and /debug/vars — on addr
// in a background goroutine. A listen or serve failure is reported to
// onErr; Serve itself never blocks.
func Serve(addr string, onErr func(error)) {
	metrics.EnableLive()
	publishOnce.Do(func() {
		expvar.Publish("mrtext.metrics", expvar.Func(metrics.LiveVars))
	})
	//mrlint:ignore goroleak debug server lives for the whole process; it has no shutdown path by design
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			onErr(err)
		}
	}()
}
