package trace

import (
	"sync/atomic"
	"testing"
)

// BenchmarkSpanDisabled measures the disabled-tracer cost of a span call
// site — the price every instrumented hot path pays when no tracer is
// attached. The acceptance bar is < 10 ns and zero allocations.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start(KindSpill, LaneSupport, 1, 2, 0)
		s.EndCounts(int64(i), int64(i))
	}
}

// BenchmarkInstantDisabled is the same bar for instant call sites.
func BenchmarkInstantDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(KindSpillHandoff, LaneSupport, 1, 2, int64(i))
	}
}

// BenchmarkSpanEnabled measures the enabled emit path. It must not
// allocate: events land in the pre-sized ring in place.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Start(KindSpill, LaneSupport, 1, 2, 0)
		s.EndCounts(int64(i), int64(i))
	}
}

// BenchmarkSpanEnabledParallel exercises stripe contention: distinct
// (node, lane) sources map to distinct stripes.
func BenchmarkSpanEnabledParallel(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	var node atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		n := int(node.Add(1))
		i := 0
		for pb.Next() {
			s := tr.Start(KindSpill, LaneSupport, n, i, 0)
			s.End()
			i++
		}
	})
}
