package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// This file parses a trace_event JSON document written by WriteJSON back
// into Events, so analysis (the critpath package, mrtracecheck -report)
// runs on recorded artifacts as well as on live tracers. The mapping is
// the exporter's inverse: span names resolve to kinds and categories to
// lanes by name — not ordinal — so a trace written before a kind was
// added (or after one is) still parses; entries with unknown names or
// phases are skipped rather than rejected.

// kindByName resolves an exported span name to its Kind.
func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// laneByName resolves an exported category to its Lane.
func laneByName(name string) (Lane, bool) {
	for l := Lane(0); l < numLanes; l++ {
		if laneNames[l] == name {
			return l, true
		}
	}
	return 0, false
}

// ParseJSON decodes a trace_event document produced by WriteJSON into
// events in timestamp order. Metadata rows and entries carrying unknown
// span names, lanes, or phases are skipped. Timestamps and durations
// convert from exported microseconds back to nanoseconds.
func ParseJSON(data []byte) ([]Event, error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Cat  string  `json:"cat"`
			Args struct {
				Task    int64 `json:"task"`
				Records int64 `json:"records"`
				Bytes   int64 `json:"bytes"`
				Attempt int64 `json:"attempt"`
				Arg     int64 `json:"arg"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: parsing trace_event document: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	var events []Event
	for _, je := range doc.TraceEvents {
		if je.Ph != "X" && je.Ph != "i" {
			continue
		}
		kind, ok := kindByName(je.Name)
		if !ok {
			continue
		}
		lane, ok := laneByName(je.Cat)
		if !ok {
			continue
		}
		e := Event{
			TS:   int64(math.Round(je.TS * 1e3)),
			Kind: kind,
			Lane: lane,
			Node: int32(je.Pid - 1),
			Task: int32(je.Args.Task),
			Slot: int32((je.Tid - 1) % maxSlots),
		}
		if je.Ph == "i" {
			e.Arg = je.Args.Arg
		} else {
			e.Dur = int64(math.Round(je.Dur * 1e3))
			e.Records = je.Args.Records
			e.Bytes = je.Args.Bytes
			e.Arg = je.Args.Attempt
		}
		events = append(events, e)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Dur > events[j].Dur
	})
	return events, nil
}
