package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file renders a recorded trace as a terminal Gantt chart for quick
// inspection without leaving the shell: one row per (node, lane, slot)
// track, spans painted as kind-coded glyphs over a common time axis.
// Longer spans are painted first so nested detail (a sort inside a spill
// inside a map task) overwrites its parent where it occurred — the same
// visual nesting Perfetto draws vertically.

// ganttGlyphs maps span kinds to their paint characters.
var ganttGlyphs = [numKinds]byte{
	KindJob:          '=',
	KindMapTask:      'm',
	KindSpill:        'S',
	KindSort:         'o',
	KindCombine:      'c',
	KindMerge:        'G',
	KindShuffleFetch: 'f',
	KindShuffleCopy:  'C',
	KindReduceTask:   'r',
	KindWaitMap:      '.',
	KindWaitSupport:  '.',
	KindWaitStaging:  'b',
	KindWaitFabric:   'w',
	KindWaitRetry:    'y',
	KindWaitQueue:    'q',
	KindWaitGovernor: 'g',
}

// Gantt renders events as a fixed-width terminal timeline. width is the
// number of columns for the time axis (minimum 20; 0 uses 100). The
// chart is built in memory and written once; the returned error is the
// writer's.
func Gantt(w io.Writer, events []Event, width int) error {
	var b strings.Builder
	ganttTo(&b, events, nil, width)
	_, err := io.WriteString(w, b.String())
	return err
}

// GanttMarked renders the same timeline with the marked spans — the
// critical path the analyzer extracted — repainted as '#', so the chain
// of spans the job's wall time actually waited on reads straight off the
// chart. Marked events are matched by identity (kind, lane, coordinates,
// start, duration); marks that match no event are ignored.
func GanttMarked(w io.Writer, events, marked []Event, width int) error {
	var b strings.Builder
	ganttTo(&b, events, marked, width)
	_, err := io.WriteString(w, b.String())
	return err
}

// spanKey identifies one span for critical-path marking.
type spanKey struct {
	ts, dur    int64
	kind       Kind
	lane       Lane
	node, slot int32
}

func keyOf(e Event) spanKey {
	return spanKey{ts: e.TS, dur: e.Dur, kind: e.Kind, lane: e.Lane, node: e.Node, slot: e.Slot}
}

func ganttTo(w *strings.Builder, events, marked []Event, width int) {
	if width <= 0 {
		width = 100
	}
	if width < 20 {
		width = 20
	}
	var minTS, maxTS int64 = -1, 0
	type trackKey struct {
		node int32
		lane Lane
		slot int32
	}
	tracks := make(map[trackKey][]Event)
	for _, e := range events {
		if e.Kind.Instant() {
			continue
		}
		if minTS < 0 || e.TS < minTS {
			minTS = e.TS
		}
		if end := e.TS + e.Dur; end > maxTS {
			maxTS = end
		}
		k := trackKey{e.Node, e.Lane, e.Slot}
		tracks[k] = append(tracks[k], e)
	}
	if len(tracks) == 0 {
		fmt.Fprintln(w, "trace: no spans recorded")
		return
	}
	span := maxTS - minTS
	if span <= 0 {
		span = 1
	}
	marks := make(map[spanKey]bool, len(marked))
	for _, e := range marked {
		marks[keyOf(e)] = true
	}

	keys := make([]trackKey, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		return a.slot < b.slot
	})

	total := time.Duration(span)
	fmt.Fprintf(w, "timeline: %s across %d tracks (1 col = %s)\n",
		total.Round(time.Microsecond), len(tracks), (total / time.Duration(width)).Round(time.Microsecond))
	for _, k := range keys {
		evs := tracks[k]
		// Longest spans first so shorter (nested) spans repaint over them;
		// marked (critical-path) spans last so the '#' overlay survives.
		sort.SliceStable(evs, func(i, j int) bool {
			mi, mj := marks[keyOf(evs[i])], marks[keyOf(evs[j])]
			if mi != mj {
				return mj
			}
			return evs[i].Dur > evs[j].Dur
		})
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range evs {
			lo := int((e.TS - minTS) * int64(width) / span)
			hi := int((e.TS + e.Dur - minTS) * int64(width) / span)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			g := ganttGlyphs[e.Kind]
			if g == 0 {
				g = '?'
			}
			if marks[keyOf(e)] {
				g = '#'
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = g
			}
		}
		label := fmt.Sprintf("n%d %s/%d", k.node, k.lane, k.slot)
		if k.node < 0 {
			label = fmt.Sprintf("cluster %s", k.lane)
		}
		fmt.Fprintf(w, "%-16s |%s|\n", label, row)
	}
	legend := "legend: = job  m map-task  S spill  o sort  c combine  G merge  f shuffle-fetch  C shuffle-copy  r reduce-task  . wait  b staging-wait  w fabric-wait  y retry-wait  q queue-wait  g governor-wait"
	if len(marks) > 0 {
		legend += "  # critical path"
	}
	fmt.Fprintln(w, legend)
}
