package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file renders a recorded trace as a terminal Gantt chart for quick
// inspection without leaving the shell: one row per (node, lane, slot)
// track, spans painted as kind-coded glyphs over a common time axis.
// Longer spans are painted first so nested detail (a sort inside a spill
// inside a map task) overwrites its parent where it occurred — the same
// visual nesting Perfetto draws vertically.

// ganttGlyphs maps span kinds to their paint characters.
var ganttGlyphs = [numKinds]byte{
	KindJob:          '=',
	KindMapTask:      'm',
	KindSpill:        'S',
	KindSort:         'o',
	KindCombine:      'c',
	KindMerge:        'G',
	KindShuffleFetch: 'f',
	KindShuffleCopy:  'C',
	KindReduceTask:   'r',
	KindWaitMap:      '.',
	KindWaitSupport:  '.',
}

// Gantt renders events as a fixed-width terminal timeline. width is the
// number of columns for the time axis (minimum 20; 0 uses 100). The
// chart is built in memory and written once; the returned error is the
// writer's.
func Gantt(w io.Writer, events []Event, width int) error {
	var b strings.Builder
	ganttTo(&b, events, width)
	_, err := io.WriteString(w, b.String())
	return err
}

func ganttTo(w *strings.Builder, events []Event, width int) {
	if width <= 0 {
		width = 100
	}
	if width < 20 {
		width = 20
	}
	var minTS, maxTS int64 = -1, 0
	type trackKey struct {
		node int32
		lane Lane
		slot int32
	}
	tracks := make(map[trackKey][]Event)
	for _, e := range events {
		if e.Kind.Instant() {
			continue
		}
		if minTS < 0 || e.TS < minTS {
			minTS = e.TS
		}
		if end := e.TS + e.Dur; end > maxTS {
			maxTS = end
		}
		k := trackKey{e.Node, e.Lane, e.Slot}
		tracks[k] = append(tracks[k], e)
	}
	if len(tracks) == 0 {
		fmt.Fprintln(w, "trace: no spans recorded")
		return
	}
	span := maxTS - minTS
	if span <= 0 {
		span = 1
	}

	keys := make([]trackKey, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		return a.slot < b.slot
	})

	total := time.Duration(span)
	fmt.Fprintf(w, "timeline: %s across %d tracks (1 col = %s)\n",
		total.Round(time.Microsecond), len(tracks), (total / time.Duration(width)).Round(time.Microsecond))
	for _, k := range keys {
		evs := tracks[k]
		// Longest spans first so shorter (nested) spans repaint over them.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Dur > evs[j].Dur })
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range evs {
			lo := int((e.TS - minTS) * int64(width) / span)
			hi := int((e.TS + e.Dur - minTS) * int64(width) / span)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			g := ganttGlyphs[e.Kind]
			if g == 0 {
				g = '?'
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = g
			}
		}
		label := fmt.Sprintf("n%d %s/%d", k.node, k.lane, k.slot)
		if k.node < 0 {
			label = fmt.Sprintf("cluster %s", k.lane)
		}
		fmt.Fprintf(w, "%-16s |%s|\n", label, row)
	}
	fmt.Fprintln(w, "legend: = job  m map-task  S spill  o sort  c combine  G merge  f shuffle-fetch  C shuffle-copy  r reduce-task  . wait")
}
