package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start(KindMapTask, LaneMap, 0, 0, 0)
	s.End()
	s.EndCounts(1, 2)
	tr.Instant(KindWorkSteal, LaneScheduler, 0, 0, 0)
	tr.Complete(KindWaitMap, LaneMap, 0, 0, 0, time.Now(), time.Second)
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer reported drops")
	}
}

func TestSpanRoundTrip(t *testing.T) {
	tr := New(1024)
	s := tr.Start(KindSort, LaneSupport, 3, 7, 1)
	time.Sleep(time.Millisecond)
	s.EndCounts(100, 2048)
	tr.Instant(KindSpillHandoff, LaneSupport, 3, 7, 4096)

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	sp := evs[0]
	if sp.Kind != KindSort || sp.Lane != LaneSupport || sp.Node != 3 || sp.Task != 7 || sp.Slot != 1 {
		t.Errorf("span identity wrong: %+v", sp)
	}
	if sp.Duration() < time.Millisecond {
		t.Errorf("span duration %v, want >= 1ms", sp.Duration())
	}
	if sp.Records != 100 || sp.Bytes != 2048 {
		t.Errorf("span counters wrong: %+v", sp)
	}
	in := evs[1]
	if in.Kind != KindSpillHandoff || !in.Kind.Instant() || in.Arg != 4096 {
		t.Errorf("instant wrong: %+v", in)
	}
	if in.TS < sp.TS {
		t.Error("events not in timestamp order")
	}
}

func TestCompleteMatchesCallerClock(t *testing.T) {
	tr := New(64)
	start := time.Now()
	tr.Complete(KindWaitMap, LaneMap, 1, 2, 0, start, 123*time.Millisecond)
	tr.Complete(KindWaitSupport, LaneSupport, 1, 2, 0, start, 0) // dropped: no duration
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1 (zero-duration completes are dropped)", len(evs))
	}
	if evs[0].Duration() != 123*time.Millisecond {
		t.Errorf("duration %v, want exactly 123ms", evs[0].Duration())
	}
}

func TestRingOverwriteCountsDrops(t *testing.T) {
	tr := New(numStripes) // one event per stripe
	for i := 0; i < 100; i++ {
		tr.Instant(KindWorkSteal, LaneScheduler, 0, i, 0)
	}
	if tr.Dropped() == 0 {
		t.Error("expected drops after overflowing a 1-slot stripe")
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > numStripes {
		t.Errorf("events = %d, want (0, %d]", len(evs), numStripes)
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(1 << 14)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.Start(KindSpill, LaneSupport, g, i, 0)
				s.End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 8*500 {
		t.Errorf("events = %d, want %d (dropped %d)", got, 8*500, tr.Dropped())
	}
}

func TestDefaultTracer(t *testing.T) {
	if Default() != nil {
		t.Fatal("default tracer non-nil at start")
	}
	tr := New(64)
	SetDefault(tr)
	if Default() != tr {
		t.Error("SetDefault not visible")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Error("SetDefault(nil) did not clear")
	}
}

func TestDeriveIdle(t *testing.T) {
	tr := New(256)
	base := tr.Epoch()
	tr.Complete(KindMapTask, LaneMap, 0, 0, 0, base, 10*time.Second)
	tr.Complete(KindMapTask, LaneMap, 1, 1, 0, base, 10*time.Second)
	tr.Complete(KindWaitMap, LaneMap, 0, 0, 0, base, 2*time.Second)
	tr.Complete(KindWaitSupport, LaneSupport, 0, 0, 0, base, 5*time.Second)
	tr.Complete(KindReduceTask, LaneReduce, 0, 0, 0, base, time.Hour) // ignored

	r := DeriveIdle(tr.Events())
	if r.MapTaskWall != 20*time.Second {
		t.Errorf("MapTaskWall = %v", r.MapTaskWall)
	}
	if got := r.MapIdleFraction(); got != 0.1 {
		t.Errorf("MapIdleFraction = %v, want 0.1", got)
	}
	if got := r.SupportIdleFraction(); got != 0.25 {
		t.Errorf("SupportIdleFraction = %v, want 0.25", got)
	}
	var empty IdleReport
	if empty.MapIdleFraction() != 0 || empty.SupportIdleFraction() != 0 {
		t.Error("empty report fractions non-zero")
	}
}

func TestWriteJSONValidates(t *testing.T) {
	tr := New(1024)
	js := tr.Start(KindJob, LaneScheduler, -1, -1, 0)
	s := tr.Start(KindMapTask, LaneMap, 0, 0, 1)
	sub := tr.Start(KindSort, LaneSupport, 0, 0, 1)
	sub.EndCounts(10, 100)
	s.End()
	tr.Instant(KindSpillDecision, LaneSupport, 0, 0, 8000)
	js.End()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails own validator: %v", err)
	}

	// Structure: job span routes to pid 0, node spans to pid 1, and the
	// map/support lanes land on distinct tids.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	tids := map[string]float64{}
	var sawThreadName, sawProcessName bool
	for _, ev := range doc.TraceEvents {
		switch ev["name"] {
		case "job":
			if ev["pid"].(float64) != 0 {
				t.Errorf("job span pid = %v, want 0", ev["pid"])
			}
		case "map-task", "sort":
			tids[ev["name"].(string)] = ev["tid"].(float64)
		case "thread_name":
			sawThreadName = true
		case "process_name":
			sawProcessName = true
		}
	}
	if tids["map-task"] == tids["sort"] {
		t.Error("map and support lanes share a tid")
	}
	if !sawThreadName || !sawProcessName {
		t.Error("missing metadata rows")
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":       "}{",
		"no traceEvents": `{"foo": []}`,
		"empty":          `{"traceEvents": []}`,
		"no name":        `{"traceEvents": [{"ph":"i","ts":1,"pid":0,"tid":1}]}`,
		"no ph":          `{"traceEvents": [{"name":"x","ts":1,"pid":0,"tid":1}]}`,
		"bad ph":         `{"traceEvents": [{"name":"x","ph":"Q","ts":1,"pid":0,"tid":1}]}`,
		"X without dur":  `{"traceEvents": [{"name":"x","ph":"X","ts":1,"pid":0,"tid":1}]}`,
		"negative ts":    `{"traceEvents": [{"name":"x","ph":"i","ts":-1,"pid":0,"tid":1}]}`,
		"no pid":         `{"traceEvents": [{"name":"x","ph":"i","ts":1,"tid":1}]}`,
		"no tid":         `{"traceEvents": [{"name":"x","ph":"i","ts":1,"pid":0}]}`,
		"M without args": `{"traceEvents": [{"name":"process_name","ph":"M","pid":0}]}`,
	}
	for name, doc := range cases {
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted %s", name, doc)
		}
	}
	good := `{"traceEvents": [{"name":"x","ph":"X","ts":1,"dur":0,"pid":0,"tid":1}]}`
	if err := Validate([]byte(good)); err != nil {
		t.Errorf("validator rejected minimal valid doc: %v", err)
	}
}

func TestGanttRendersTracks(t *testing.T) {
	tr := New(256)
	mt := tr.Start(KindMapTask, LaneMap, 0, 0, 0)
	sp := tr.Start(KindSpill, LaneSupport, 0, 0, 0)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	mt.End()
	rt := tr.Start(KindReduceTask, LaneReduce, 1, 0, 0)
	rt.End()

	var buf bytes.Buffer
	if err := Gantt(&buf, tr.Events(), 60); err != nil {
		t.Fatalf("gantt: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"n0 map/0", "n0 support/0", "n1 reduce/0", "legend:", "m", "S"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q:\n%s", want, out)
		}
	}
	var empty bytes.Buffer
	if err := Gantt(&empty, nil, 60); err != nil {
		t.Fatalf("gantt: %v", err)
	}
	if !strings.Contains(empty.String(), "no spans") {
		t.Error("empty gantt missing placeholder")
	}
}

func TestKindAndLaneNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind name")
	}
	for l := Lane(0); l < numLanes; l++ {
		if l.String() == "" || l.String() == "unknown" {
			t.Errorf("lane %d has no name", l)
		}
	}
	if Lane(200).String() != "unknown" {
		t.Error("out-of-range lane name")
	}
	spans := []Kind{KindJob, KindMapTask, KindSpill, KindSort, KindCombine, KindMerge, KindShuffleFetch, KindReduceTask, KindWaitMap, KindWaitSupport}
	for _, k := range spans {
		if k.Instant() {
			t.Errorf("%v classified as instant", k)
		}
	}
	for _, k := range []Kind{KindSpillHandoff, KindSpillDecision, KindFreqEviction, KindWorkSteal} {
		if !k.Instant() {
			t.Errorf("%v not classified as instant", k)
		}
	}
}
