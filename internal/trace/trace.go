// Package trace is the runtime's span tracer: a low-overhead, lock-striped
// ring-buffer event recorder that captures one MapReduce job's timeline at
// the granularity the paper measures — per-task spans (map-task, spill,
// sort, combine, merge, shuffle-fetch, reduce-task), per-goroutine lanes
// (map / support / reduce / scheduler), and instant events for the
// scheduler and optimizer decisions (spill handoffs, spill-matcher
// percentages, frequency-buffer evictions, work steals).
//
// The recorder exists to make the paper's figures directly observable on a
// live run instead of only as post-hoc aggregates: Fig. 9's map/support
// overlap is the map and support lanes of one node rendered side by side,
// and Table II's busy/idle accounting falls out of the wait spans (see
// DeriveIdle). Export to the Chrome trace_event JSON format (WriteJSON)
// loads in ui.perfetto.dev with one process per node and one thread per
// goroutine lane; Gantt renders the same timeline in the terminal.
//
// Cost model: tracing is off unless a *Tracer is attached to the job, and
// every emit entry point is nil-receiver safe, so the disabled fast path is
// a nil check — no allocation, no clock read, benchmarked under 10 ns per
// span call site (BenchmarkSpanDisabled). When enabled, events are
// fixed-size structs written into per-stripe rings guarded by per-stripe
// mutexes; stripes are selected by (node, lane) so the goroutines of one
// task never contend with another node's. A full ring overwrites its
// oldest events and counts the overflow in Dropped rather than blocking
// the pipeline.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the typed span or instant an Event records.
type Kind uint8

// Span kinds ("X" complete events in the exported trace).
const (
	// KindJob spans the whole job, on the scheduler lane.
	KindJob Kind = iota
	// KindMapTask spans one map task attempt, on the map lane.
	KindMapTask
	// KindSpill spans the support goroutine consuming one spill.
	KindSpill
	// KindSort spans sorting one spill's records.
	KindSort
	// KindCombine spans the user combine() during one spill.
	KindCombine
	// KindMerge spans merging spill runs into the map output.
	KindMerge
	// KindShuffleFetch spans the reduce side opening map-output segments.
	KindShuffleFetch
	// KindShuffleCopy spans a shuffle copier staging one committed
	// map-output segment.
	KindShuffleCopy
	// KindReduceTask spans one reduce task attempt, on the reduce lane.
	KindReduceTask
	// KindWaitMap spans a map goroutine blocked on a full spill buffer.
	KindWaitMap
	// KindWaitSupport spans a support goroutine waiting for a spill.
	KindWaitSupport
	// KindWaitStaging spans a shuffle copier blocked on staging-buffer
	// budget (backpressure) before its reservation resolved.
	KindWaitStaging
	// KindWaitFabric spans time blocked in a simulated fabric transfer on
	// the shuffle path (copier staging hop, staged take, streamed fetch).
	KindWaitFabric
	// KindWaitRetry spans a reduce attempt's backoff sleep between
	// shuffle-fetch retries.
	KindWaitRetry
	// KindWaitQueue spans a reduce attempt between enqueue and a worker
	// slot picking it up.
	KindWaitQueue
	// KindWaitGovernor spans a shuffle copier parked by the contention
	// governor: staging work was pending, but the fabric was map-hot (or
	// the ramp limit was reached) and the copier waited for a token.
	KindWaitGovernor

	// KindSpillHandoff is the first instant kind ("i" events from here
	// down): a spill batch handed to the support goroutine.
	KindSpillHandoff
	// KindSpillDecision records the spill-matcher threshold after a
	// measurement.
	KindSpillDecision
	// KindFreqEviction records frequency-buffer aggregates overflowing to
	// the spill path.
	KindFreqEviction
	// KindWorkSteal records the scheduler giving a node another node's
	// local task.
	KindWorkSteal
	// KindTaskRetry records a failed attempt being requeued (arg: attempt
	// number).
	KindTaskRetry
	// KindNodeDeath records the runner noticing a node died (arg: dead
	// node).
	KindNodeDeath
	// KindSpeculativeLaunch records a backup attempt launched for a
	// straggler (arg: attempt).
	KindSpeculativeLaunch

	numKinds
)

var kindNames = [numKinds]string{
	"job", "map-task", "spill", "sort", "combine", "merge",
	"shuffle-fetch", "shuffle-copy", "reduce-task", "wait-map", "wait-support",
	"wait-staging", "wait-fabric", "wait-retry", "wait-queue", "wait-governor",
	"spill-handoff", "spill-decision", "freq-eviction", "work-steal",
	"task-retry", "node-death", "speculative-launch",
}

// String returns the span name used in exports.
func (k Kind) String() string {
	if k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Instant reports whether k is an instant event kind rather than a span.
func (k Kind) Instant() bool { return k >= KindSpillHandoff && k < numKinds }

// Lane identifies which goroutine of the pipeline an event belongs to —
// the swimlane ("thread") it renders on. The order is the vertical order
// in the exported view: map over support makes the Fig. 9 overlap visible.
type Lane uint8

const (
	// LaneMap is the map goroutine's swimlane.
	LaneMap Lane = iota
	// LaneSupport is the spill/support goroutine's swimlane.
	LaneSupport
	// LaneReduce is the reduce goroutine's swimlane.
	LaneReduce
	// LaneScheduler is the job scheduler's swimlane.
	LaneScheduler
	numLanes
)

var laneNames = [numLanes]string{"map", "support", "reduce", "scheduler"}

// String returns the lane name.
func (l Lane) String() string {
	if l >= numLanes {
		return "unknown"
	}
	return laneNames[l]
}

// Event is one recorded span or instant. It is a fixed-size value — the
// ring buffers hold events inline so recording allocates nothing.
type Event struct {
	TS      int64 // nanoseconds since the tracer epoch
	Dur     int64 // span duration in nanoseconds (0 for instants)
	Records int64 // record count carried by the span, if any
	Bytes   int64 // byte count carried by the span, if any
	Arg     int64 // instant payload (bytes, basis points, victim node, ...)
	Kind    Kind
	Lane    Lane
	Node    int32 // -1 for cluster-wide events (the job span)
	Task    int32 // task index within its kind; -1 when not task-scoped
	Slot    int32 // execution slot on the node, distinguishes concurrent tasks
}

// Duration returns the span duration as a time.Duration.
func (e Event) Duration() time.Duration { return time.Duration(e.Dur) }

// numStripes is the stripe count (power of two). Each (node, lane) pair
// maps to one stripe, so the two goroutines of a map task write to
// different stripes and different nodes rarely collide.
const numStripes = 16

// stripe is one ring buffer plus its lock, padded to its own cache lines.
type stripe struct {
	mu  sync.Mutex
	buf []Event
	n   int64 // total events ever written to this stripe
	_   [64]byte
}

// Tracer records events for one job (or several back-to-back jobs; the
// epoch is set at construction). The zero *Tracer (nil) is a valid
// disabled tracer: every method is a no-op nil check.
type Tracer struct {
	epoch   time.Time
	stripes [numStripes]stripe
}

// DefaultCapacity is the default total event capacity: enough for every
// experiment configuration in the repo at ~64 bytes an event.
const DefaultCapacity = 1 << 18

// New returns a Tracer holding up to capacity events (rounded up to a
// multiple of the stripe count); capacity <= 0 uses DefaultCapacity.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numStripes - 1) / numStripes
	t := &Tracer{epoch: time.Now()}
	for i := range t.stripes {
		t.stripes[i].buf = make([]Event, per)
	}
	return t
}

// Epoch returns the tracer's time origin.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// stripeFor picks the ring for an event source. Node -1 (job-level) and
// the scheduler lane hash like node 0 lanes; contention there is rare.
func (t *Tracer) stripeFor(node int32, lane Lane) *stripe {
	h := (uint32(node+1)*uint32(numLanes) + uint32(lane)) & (numStripes - 1)
	return &t.stripes[h]
}

// emit appends one event to its stripe's ring, overwriting the oldest
// event when full.
func (t *Tracer) emit(ev Event) {
	s := t.stripeFor(ev.Node, ev.Lane)
	s.mu.Lock()
	s.buf[s.n%int64(len(s.buf))] = ev
	s.n++
	s.mu.Unlock()
}

// Span is an open span handle. The zero Span (from a nil Tracer) is a
// valid no-op; End and EndCounts on it return immediately. It is kept
// small (32 bytes: the start instant is nanoseconds since the tracer
// epoch, not a time.Time, and the attempt number rides in a byte of
// padding) so the disabled path moves one register-sized zero struct.
type Span struct {
	tr      *Tracer
	start   int64 // ns since tr.epoch
	kind    Kind
	lane    Lane
	attempt uint8 // task attempt number, exported as the span's Arg
	node    int32
	task    int32
	slot    int32
}

// Start opens a span of the given kind on (node, task, slot) for task.
// Safe on a nil Tracer (returns a no-op Span). The nil branch is kept
// small enough to inline at every call site — the disabled cost of an
// instrumented hot path is this nil check plus a zero-struct return.
func (t *Tracer) Start(kind Kind, lane Lane, node, task, slot int) Span {
	if t == nil {
		return Span{}
	}
	return t.startSpan(kind, lane, node, task, slot, 0)
}

// StartAttempt opens a task span carrying its attempt number, which the
// export surfaces as the span's arg — retries and speculative backups of
// one task are distinguishable on the timeline. Safe on a nil Tracer.
func (t *Tracer) StartAttempt(kind Kind, lane Lane, node, task, slot, attempt int) Span {
	if t == nil {
		return Span{}
	}
	return t.startSpan(kind, lane, node, task, slot, attempt)
}

// startSpan is the enabled path, out of line so Start stays inlinable.
func (t *Tracer) startSpan(kind Kind, lane Lane, node, task, slot, attempt int) Span {
	return Span{tr: t, start: time.Since(t.epoch).Nanoseconds(), kind: kind, lane: lane,
		attempt: uint8(attempt), node: int32(node), task: int32(task), slot: int32(slot)}
}

// End closes the span with no counters.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.endSpan(0, 0)
}

// EndCounts closes the span, attaching record and byte counters.
func (s Span) EndCounts(records, bytes int64) {
	if s.tr == nil {
		return
	}
	s.endSpan(records, bytes)
}

// endSpan is the enabled path, out of line so End/EndCounts inline.
func (s Span) endSpan(records, bytes int64) {
	now := time.Since(s.tr.epoch).Nanoseconds()
	s.tr.emit(Event{
		TS:      s.start,
		Dur:     now - s.start,
		Records: records,
		Bytes:   bytes,
		Arg:     int64(s.attempt),
		Kind:    s.kind,
		Lane:    s.lane,
		Node:    s.node,
		Task:    s.task,
		Slot:    s.slot,
	})
}

// Complete records an already-measured span: start and dur come from the
// caller's own clock reads, so trace accounting matches the caller's
// metrics accounting exactly (the wait spans use this). Safe on nil.
func (t *Tracer) Complete(kind Kind, lane Lane, node, task, slot int, start time.Time, dur time.Duration) {
	if t == nil || dur <= 0 {
		return
	}
	t.complete(kind, lane, node, task, slot, start, dur)
}

// complete is the enabled path, out of line so Complete inlines.
func (t *Tracer) complete(kind Kind, lane Lane, node, task, slot int, start time.Time, dur time.Duration) {
	t.emit(Event{
		TS:   start.Sub(t.epoch).Nanoseconds(),
		Dur:  dur.Nanoseconds(),
		Kind: kind,
		Lane: lane,
		Node: int32(node),
		Task: int32(task),
		Slot: int32(slot),
	})
}

// Instant records a point event with one integer payload. Safe on nil.
func (t *Tracer) Instant(kind Kind, lane Lane, node, task int, arg int64) {
	if t == nil {
		return
	}
	t.instant(kind, lane, node, task, arg)
}

// instant is the enabled path, out of line so Instant inlines.
func (t *Tracer) instant(kind Kind, lane Lane, node, task int, arg int64) {
	t.emit(Event{
		TS:   time.Since(t.epoch).Nanoseconds(),
		Arg:  arg,
		Kind: kind,
		Lane: lane,
		Node: int32(node),
		Task: int32(task),
	})
}

// Dropped returns how many events were overwritten by ring wrap-around.
// A report derived from a tracer with Dropped() > 0 is incomplete.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var dropped int64
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		if over := s.n - int64(len(s.buf)); over > 0 {
			dropped += over
		}
		s.mu.Unlock()
	}
	return dropped
}

// Events returns a snapshot of all recorded events in timestamp order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		n := s.n
		if n > int64(len(s.buf)) {
			n = int64(len(s.buf))
		}
		out = append(out, s.buf[:n]...)
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Dur > out[j].Dur // parents before their children
	})
	return out
}

// defaultTracer backs Default/SetDefault: a process-wide tracer the CLIs
// install so code that builds jobs internally (the experiment harness)
// inherits tracing without plumbing. Nil means tracing is off.
var defaultTracer atomic.Pointer[Tracer]

// Default returns the process-wide tracer, or nil when tracing is off.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault installs (or, with nil, removes) the process-wide tracer
// that jobs without an explicit tracer fall back to.
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// IdleReport is the trace-derived Table II busy/idle accounting for the
// map phase: wait-span time over map-task wall time, per goroutine lane.
type IdleReport struct {
	MapTaskWall time.Duration // Σ map-task span durations
	MapWait     time.Duration // Σ wait-map span durations
	SupportWait time.Duration // Σ wait-support span durations
}

// MapIdleFraction returns the map goroutines' idle share of map-task wall
// time — the trace-derived "Map, Idle" column of Table II.
func (r IdleReport) MapIdleFraction() float64 {
	if r.MapTaskWall == 0 {
		return 0
	}
	return float64(r.MapWait) / float64(r.MapTaskWall)
}

// SupportIdleFraction returns the support goroutines' idle share — the
// trace-derived "Support, Idle" column of Table II.
func (r IdleReport) SupportIdleFraction() float64 {
	if r.MapTaskWall == 0 {
		return 0
	}
	return float64(r.SupportWait) / float64(r.MapTaskWall)
}

// DeriveIdle computes the busy/idle fractions of Table II from a trace,
// the cross-check for the metrics layer's wait accounting
// (Result.MapIdleFraction / Result.SupportIdleFraction).
func DeriveIdle(events []Event) IdleReport {
	var r IdleReport
	for _, e := range events {
		switch e.Kind {
		case KindMapTask:
			r.MapTaskWall += e.Duration()
		case KindWaitMap:
			r.MapWait += e.Duration()
		case KindWaitSupport:
			r.SupportWait += e.Duration()
		}
	}
	return r
}
