package trace

import (
	"encoding/json"
	"os"
	"testing"
)

// examplePath is the committed example trace: a small SynText run
// recorded by `mrrun -trace` (see examples/traces/README in the repo
// docs). The test pins the properties the example exists to demonstrate
// in ui.perfetto.dev: it validates, map and support work live on
// distinct threads, and sort/spill spans on the support lane genuinely
// overlap map-task spans.
const examplePath = "../../examples/traces/syntext-small.trace.json"

type exampleEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestExampleTraceLoadsAndShowsLanes(t *testing.T) {
	data, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatalf("reading committed example trace: %v", err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("committed example trace is invalid: %v", err)
	}

	var doc struct {
		TraceEvents []exampleEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	// Lane → set of (pid, tid) tracks, and the spans we need for the
	// overlap assertion.
	type track struct{ pid, tid int }
	laneTracks := make(map[string]map[track]bool)
	var mapTasks, supportWork []exampleEvent
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if laneTracks[ev.Cat] == nil {
			laneTracks[ev.Cat] = make(map[track]bool)
		}
		laneTracks[ev.Cat][track{ev.PID, ev.TID}] = true
		switch {
		case ev.Name == "map-task":
			mapTasks = append(mapTasks, ev)
		case ev.Cat == "support" && (ev.Name == "sort" || ev.Name == "spill"):
			supportWork = append(supportWork, ev)
		}
	}

	if len(mapTasks) == 0 || len(supportWork) == 0 {
		t.Fatalf("example trace missing content: %d map-tasks, %d support sort/spill spans",
			len(mapTasks), len(supportWork))
	}

	// Map and support lanes must occupy disjoint thread ids on every
	// node — they are the two swimlanes of Fig. 9.
	for tr := range laneTracks["map"] {
		if laneTracks["support"][tr] {
			t.Errorf("map and support lanes share track pid=%d tid=%d", tr.pid, tr.tid)
		}
	}
	if len(laneTracks["map"]) == 0 || len(laneTracks["support"]) == 0 {
		t.Fatalf("lanes missing: map tracks %d, support tracks %d",
			len(laneTracks["map"]), len(laneTracks["support"]))
	}

	// At least one support-lane sort/spill span must overlap a map-task
	// span on the same node: the concurrency the trace exists to show.
	overlaps := 0
	for _, s := range supportWork {
		for _, m := range mapTasks {
			if s.PID != m.PID {
				continue
			}
			if s.TS < m.TS+m.Dur && s.TS+s.Dur > m.TS {
				overlaps++
				break
			}
		}
	}
	if overlaps == 0 {
		t.Error("no support-lane sort/spill span overlaps a map-task span")
	}
}
