package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file exports a recorded trace in the Chrome trace_event JSON
// format, which ui.perfetto.dev and chrome://tracing load directly. The
// mapping makes the paper's figures visible in the UI:
//
//   - one process (pid) per cluster node (pid 0 is the cluster itself,
//     carrying the job span and scheduler instants),
//   - one thread (tid) per goroutine lane and execution slot, named
//     "map slot 0", "support slot 0", "reduce slot 1", ... so Fig. 9's
//     map-vs-support overlap is two adjacent swimlanes,
//   - spans as "X" (complete) events with microsecond timestamps and
//     task/record/byte counters in args,
//   - instants as thread-scoped "i" events.

// maxSlots bounds slots per lane in the tid encoding; lanes are spaced
// this far apart so (lane, slot) pairs never collide.
const maxSlots = 64

// tidFor encodes a (lane, slot) pair as a stable thread id (1-based:
// tid 0 is reserved for process metadata rows).
func tidFor(lane Lane, slot int32) int {
	s := int(slot)
	if s < 0 {
		s = 0
	}
	if s >= maxSlots {
		s = maxSlots - 1
	}
	return int(lane)*maxSlots + s + 1
}

// jsonEvent is one trace_event entry. Args is loosely typed because data
// events carry integer counters while metadata events carry name strings.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // always present: a 0-dur complete event is still valid
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// pidName renders the process name for a pid.
func pidName(pid int) string {
	if pid == 0 {
		return "cluster"
	}
	return fmt.Sprintf("node %d", pid-1)
}

// WriteJSON writes events as a trace_event JSON document.
func WriteJSON(w io.Writer, events []Event) error {
	type track struct {
		pid, tid int
		lane     Lane
		slot     int32
	}
	seen := make(map[track]bool)
	data := make([]jsonEvent, 0, len(events)+64)

	for _, e := range events {
		pid := int(e.Node) + 1
		if pid < 0 {
			pid = 0
		}
		tid := tidFor(e.Lane, e.Slot)
		seen[track{pid, tid, e.Lane, e.Slot}] = true

		je := jsonEvent{
			Name: e.Kind.String(),
			TS:   float64(e.TS) / 1e3,
			Pid:  pid,
			Tid:  tid,
			Cat:  e.Lane.String(),
			Args: map[string]any{"task": int64(e.Task)},
		}
		if e.Kind.Instant() {
			je.Ph = "i"
			je.S = "t"
			je.Args["arg"] = e.Arg
		} else {
			je.Ph = "X"
			je.Dur = float64(e.Dur) / 1e3
			if e.Records != 0 {
				je.Args["records"] = e.Records
			}
			if e.Bytes != 0 {
				je.Args["bytes"] = e.Bytes
			}
			if e.Arg != 0 {
				je.Args["attempt"] = e.Arg
			}
		}
		data = append(data, je)
	}

	// Metadata rows: name processes and threads, and pin the lane order so
	// a node reads top-to-bottom as map / support / reduce / scheduler.
	tracks := make([]track, 0, len(seen))
	pids := make(map[int]bool)
	for tr := range seen {
		tracks = append(tracks, tr)
		pids[tr.pid] = true
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	sortedPids := make([]int, 0, len(pids))
	for pid := range pids {
		sortedPids = append(sortedPids, pid)
	}
	sort.Ints(sortedPids)
	for _, pid := range sortedPids {
		data = append(data, jsonEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": pidName(pid)}})
	}
	for _, tr := range tracks {
		data = append(data, jsonEvent{Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
			Args: map[string]any{"name": fmt.Sprintf("%s slot %d", tr.lane, tr.slot)}})
		data = append(data, jsonEvent{Name: "thread_sort_index", Ph: "M", Pid: tr.pid, Tid: tr.tid,
			Args: map[string]any{"sort_index": tr.tid}})
	}

	doc := struct {
		TraceEvents []jsonEvent `json:"traceEvents"`
	}{TraceEvents: data}
	return json.NewEncoder(w).Encode(doc)
}

// Validate checks that data is a structurally valid trace_event JSON
// document: a traceEvents array whose entries carry a name, a known phase,
// non-negative timestamps, a duration on complete events, and pid/tid
// routing. It is the schema gate CI runs on the trace-smoke artifact.
func Validate(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not a trace_event document: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string        `json:"name"`
			Ph   *string        `json:"ph"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if ev.Ph == nil {
			return fmt.Errorf("trace: event %d (%s): missing ph", i, *ev.Name)
		}
		switch *ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): complete event needs dur >= 0", i, *ev.Name)
			}
			fallthrough
		case "i":
			if ev.TS == nil || *ev.TS < 0 {
				return fmt.Errorf("trace: event %d (%s): needs ts >= 0", i, *ev.Name)
			}
		case "M":
			if ev.Args == nil {
				return fmt.Errorf("trace: event %d (%s): metadata event needs args", i, *ev.Name)
			}
		default:
			return fmt.Errorf("trace: event %d (%s): unsupported phase %q", i, *ev.Name, *ev.Ph)
		}
		if ev.Pid == nil {
			return fmt.Errorf("trace: event %d (%s): missing pid", i, *ev.Name)
		}
		if *ev.Ph != "M" && ev.Tid == nil {
			return fmt.Errorf("trace: event %d (%s): missing tid", i, *ev.Name)
		}
	}
	return nil
}
