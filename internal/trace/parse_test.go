package trace

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// readExampleEvents parses the committed example trace artifact.
func readExampleEvents(t *testing.T) []Event {
	t.Helper()
	data, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatalf("reading committed example trace: %v", err)
	}
	events, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("parsing committed example trace: %v", err)
	}
	return events
}

// TestParseJSONRoundTrip pins ParseJSON as WriteJSON's inverse: a written
// trace parses back to the same events. Microsecond export precision is
// lossless here because every nanosecond value divides into a float64
// exactly at job-scale magnitudes.
func TestParseJSONRoundTrip(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 5_000_000, Kind: KindJob, Lane: LaneScheduler, Node: -1, Task: -1},
		{TS: 1_000, Dur: 2_000_000, Records: 120, Bytes: 4096, Arg: 1, Kind: KindMapTask, Lane: LaneMap, Node: 0, Task: 3, Slot: 1},
		{TS: 5_500, Dur: 100_000, Kind: KindSpill, Lane: LaneSupport, Node: 0, Task: 3, Slot: 1},
		{TS: 7_777, Dur: 3_003, Kind: KindWaitStaging, Lane: LaneReduce, Node: 2, Task: 9, Slot: 8},
		{TS: 8_000, Dur: 12_345, Kind: KindWaitFabric, Lane: LaneReduce, Node: 1, Task: 2, Slot: 0},
		{TS: 9_001, Dur: 999, Kind: KindWaitRetry, Lane: LaneReduce, Node: 1, Task: 2, Slot: 0},
		{TS: 9_500, Dur: 1, Kind: KindWaitQueue, Lane: LaneReduce, Node: 3, Task: 0, Slot: 2},
		{TS: 10_000, Arg: 42, Kind: KindWorkSteal, Lane: LaneScheduler, Node: 2, Task: 7},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	// ParseJSON returns timestamp order; the fixture is already sorted.
	for i := range events {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestParseJSONSkipsUnknown checks forward compatibility: metadata rows,
// unknown span names and unknown phases are skipped, not errors.
func TestParseJSONSkipsUnknown(t *testing.T) {
	doc := []byte(`{"traceEvents":[
		{"name":"process_name","ph":"M","pid":0,"args":{"name":"cluster"}},
		{"name":"map-task","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"cat":"map","args":{"task":5}},
		{"name":"kind-from-the-future","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"cat":"map"},
		{"name":"map-task","ph":"B","ts":1,"pid":1,"tid":1,"cat":"map"},
		{"name":"map-task","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"cat":"lane-from-the-future"}
	]}`)
	events, err := ParseJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindMapTask || events[0].Task != 5 || events[0].Node != 0 {
		t.Fatalf("got %+v, want one map-task on node 0 task 5", events)
	}
	if _, err := ParseJSON([]byte(`{"wrong":true}`)); err == nil {
		t.Fatal("document without traceEvents should error")
	}
	if _, err := ParseJSON([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON should error")
	}
}

// TestParseJSONExampleTrace parses the committed example artifact — the
// same file the golden critical-path test analyzes — and cross-checks
// DeriveIdle over the parsed events against parsing expectations: spans
// present, job span found, waits non-zero.
func TestParseJSONExampleTrace(t *testing.T) {
	events := readExampleEvents(t)
	var jobs, maps int
	for _, e := range events {
		switch e.Kind {
		case KindJob:
			jobs++
		case KindMapTask:
			maps++
		}
	}
	if jobs != 1 || maps == 0 {
		t.Fatalf("example trace parsed to %d job spans and %d map tasks", jobs, maps)
	}
	idle := DeriveIdle(events)
	if idle.MapTaskWall <= 0 || idle.MapWait <= 0 {
		t.Fatalf("example trace idle accounting empty: %+v", idle)
	}
}
