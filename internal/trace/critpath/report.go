package critpath

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// This file renders a Report for the terminal (mrrun -trace-report,
// mrtracecheck -report). The format is line-oriented and stable enough to
// grep: every blame line is `blame[<phase>] <cause> <ms> ms <pct>%`, which
// is what the CI obs-smoke step asserts on.

// densityGlyphs maps a busy fraction to a terminal shade.
const densityGlyphs = " .:-=+*#%@"

func densityGlyph(frac float64) byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	i := int(frac * float64(len(densityGlyphs)-1))
	return densityGlyphs[i]
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// stepLabel names one critical-path step for the step listing.
func stepLabel(s Step) string {
	if s.Synthetic {
		for c := Cause(0); c < NumCauses; c++ {
			if s.Blame[c] > 0 {
				return fmt.Sprintf("(%s)", c)
			}
		}
		return "(gap)"
	}
	e := s.Event
	return fmt.Sprintf("%s n%d t%d s%d", e.Kind, e.Node, e.Task, e.Slot)
}

// topBlame lists a step's non-zero causes, largest first, as a summary.
func topBlame(s Step) string {
	type cb struct {
		c Cause
		d time.Duration
	}
	var parts []cb
	for c := Cause(0); c < NumCauses; c++ {
		if s.Blame[c] > 0 {
			parts = append(parts, cb{c, s.Blame[c]})
		}
	}
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j].d > parts[j-1].d; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	var b strings.Builder
	for i, p := range parts {
		if i == 3 {
			b.WriteString(", ...")
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.1fms", p.c, ms(p.d))
	}
	return b.String()
}

// WriteText renders the full report: phase blame tables, the critical
// path step listing, the aggregate activity view, and the per-node
// utilization timelines.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: job %.1fms = map %.1fms + shuffle+reduce %.1fms\n",
		ms(r.JobWall), ms(r.Map.Wall), ms(r.Reduce.Wall))

	writePhase := func(name string, p PhaseBlame) {
		for c := Cause(0); c < NumCauses; c++ {
			if p.Causes[c] == 0 {
				continue
			}
			fmt.Fprintf(&b, "blame[%s] %-22s %10.1f ms %5.1f%%\n",
				name, c.String(), ms(p.Causes[c]), 100*p.Fraction(c))
		}
	}
	writePhase("map", r.Map)
	writePhase("reduce", r.Reduce)

	fmt.Fprintf(&b, "critical path steps (%d):\n", len(r.Path))
	for _, s := range r.Path {
		fmt.Fprintf(&b, "  %10.1fms %9.1fms  %-24s %s\n",
			ms(s.Start), ms(s.Wall()), stepLabel(s), topBlame(s))
	}

	var actTotal time.Duration
	for c := Cause(0); c < NumCauses; c++ {
		actTotal += r.Activity[c]
	}
	if actTotal > 0 {
		fmt.Fprintf(&b, "activity (all task spans decomposed, %0.1fms total):\n", ms(actTotal))
		for c := Cause(0); c < NumCauses; c++ {
			if r.Activity[c] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-22s %10.1f ms %5.1f%%\n",
				c.String(), ms(r.Activity[c]), 100*float64(r.Activity[c])/float64(actTotal))
		}
	}

	if len(r.Timelines) > 0 {
		fmt.Fprintf(&b, "utilization (%d buckets x %s; glyph = busy share of slot capacity):\n",
			r.Buckets, r.BucketWidth.Round(time.Microsecond))
		for _, tl := range r.Timelines {
			row := make([]byte, len(tl.Busy))
			for i, f := range tl.Busy {
				row[i] = densityGlyph(f)
			}
			var busyPct, idlePct float64
			if tl.OccupiedNS > 0 {
				busyPct = 100 * float64(tl.BusyNS) / float64(tl.OccupiedNS)
				idlePct = 100 * float64(tl.WaitNS) / float64(tl.OccupiedNS)
			}
			fmt.Fprintf(&b, "  n%d %-9s %d slot(s) |%s| busy/occupied %5.1f%% wait/occupied %5.1f%%\n",
				tl.Node, tl.Lane, tl.Slots, row, busyPct, idlePct)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
