package critpath

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"mrtext/internal/trace"
)

// examplePath is the committed example trace the golden test pins.
const examplePath = "../../../examples/traces/syntext-small.trace.json"

func readExample(t *testing.T) []trace.Event {
	t.Helper()
	data, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatalf("reading committed example trace: %v", err)
	}
	events, err := trace.ParseJSON(data)
	if err != nil {
		t.Fatalf("parsing committed example trace: %v", err)
	}
	return events
}

// TestGoldenExampleTrace is the golden critical-path test on the
// committed artifact: structural facts about the path, blame totals that
// reconcile with the phase walls, agreement between the timeline idle
// fractions and the wait-span accounting, and the absence of causes the
// trace cannot contain (it was recorded before shuffle-copy fan-out
// spans existed in it — no copier steal, no staging backpressure).
func TestGoldenExampleTrace(t *testing.T) {
	events := readExample(t)
	r, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The job span bounds everything.
	var jobSpan trace.Event
	for _, e := range events {
		if e.Kind == trace.KindJob {
			jobSpan = e
		}
	}
	if r.JobWall != jobSpan.Duration() {
		t.Errorf("JobWall %v != job span %v", r.JobWall, jobSpan.Duration())
	}
	if r.MapEnd <= 0 || r.MapEnd >= r.JobWall {
		t.Fatalf("MapEnd %v outside (0, %v)", r.MapEnd, r.JobWall)
	}

	// The path covers [0, JobWall] in order with no gaps.
	if len(r.Path) == 0 {
		t.Fatal("empty critical path")
	}
	if r.Path[0].Start != 0 {
		t.Errorf("path starts at %v, want 0", r.Path[0].Start)
	}
	if got := r.Path[len(r.Path)-1].End; got != r.JobWall {
		t.Errorf("path ends at %v, want %v", got, r.JobWall)
	}
	for i := 1; i < len(r.Path); i++ {
		gap := r.Path[i].Start - r.Path[i-1].End
		if gap > 0 || gap < -time.Duration(epsNS) {
			t.Errorf("path step %d starts at %v, previous ended %v", i, r.Path[i].Start, r.Path[i-1].End)
		}
	}

	// Blame sums reconcile with phase walls (chaining slack only).
	checkSum := func(name string, p PhaseBlame) {
		var sum time.Duration
		for c := Cause(0); c < NumCauses; c++ {
			sum += p.Causes[c]
		}
		if diff := sum - p.Wall; diff < -time.Duration(epsNS) || diff > time.Duration(epsNS) {
			t.Errorf("%s blame sums to %v, wall %v", name, sum, p.Wall)
		}
	}
	checkSum("map", r.Map)
	checkSum("reduce", r.Reduce)

	// The dominant map-phase causes must be present; causes the trace
	// cannot contain must be zero.
	if r.Map.Causes[CauseMapCompute] <= 0 {
		t.Error("map phase shows no map-compute")
	}
	if r.Map.Causes[CauseSpillSort] <= 0 {
		t.Error("map phase shows no spill-sort pressure (trace has wait-map spans)")
	}
	for _, c := range []Cause{CauseCopierSteal, CauseStagingBackpressure, CauseFabricWait, CauseFetchRetry} {
		if r.Map.Causes[c] != 0 || r.Reduce.Causes[c] != 0 {
			t.Errorf("cause %s nonzero on a trace with no such spans", c)
		}
	}
	if r.Reduce.Causes[CauseReduceCompute] <= 0 {
		t.Error("reduce phase shows no reduce-compute")
	}
	if r.Reduce.Causes[CauseShuffleIO] <= 0 {
		t.Error("reduce phase shows no shuffle-io (trace has shuffle-fetch spans)")
	}

	// The map chain is genuinely a chain: multiple map steps on one
	// (node, slot) track, in time order.
	var mapSteps []Step
	for _, s := range r.Path {
		if !s.Synthetic && s.Event.Kind == trace.KindMapTask {
			mapSteps = append(mapSteps, s)
		}
	}
	if len(mapSteps) < 2 {
		t.Fatalf("map chain has %d task steps, want >= 2 (the example runs two waves)", len(mapSteps))
	}
	for i := 1; i < len(mapSteps); i++ {
		if mapSteps[i].Event.Node != mapSteps[0].Event.Node || mapSteps[i].Event.Slot != mapSteps[0].Event.Slot {
			t.Errorf("map chain hops tracks: step %d on n%d s%d, chain on n%d s%d",
				i, mapSteps[i].Event.Node, mapSteps[i].Event.Slot, mapSteps[0].Event.Node, mapSteps[0].Event.Slot)
		}
	}

	// Exactly one reduce task step, and it is the last-finishing one.
	var reduceSteps []Step
	for _, s := range r.Path {
		if !s.Synthetic && s.Event.Kind == trace.KindReduceTask {
			reduceSteps = append(reduceSteps, s)
		}
	}
	if len(reduceSteps) != 1 {
		t.Fatalf("path has %d reduce steps, want 1", len(reduceSteps))
	}
	for _, e := range events {
		if e.Kind == trace.KindReduceTask && e.TS+e.Dur > reduceSteps[0].Event.TS+reduceSteps[0].Event.Dur {
			t.Errorf("critical reduce step is not the last-finishing attempt")
		}
	}

	// Timeline idle fractions agree with DeriveIdle — the generalized
	// Table II cross-check.
	idle := trace.DeriveIdle(events)
	if got, want := r.MapLaneIdleFraction(), idle.MapIdleFraction(); math.Abs(got-want) > 0.005 {
		t.Errorf("timeline map idle %.4f, DeriveIdle %.4f", got, want)
	}
	if got, want := r.SupportLaneIdleFraction(), idle.SupportIdleFraction(); math.Abs(got-want) > 0.005 {
		t.Errorf("timeline support idle %.4f, DeriveIdle %.4f", got, want)
	}

	// Timelines: all three example nodes present with map+support lanes,
	// sampled busy integral consistent with the exact BusyNS integral.
	lanes := make(map[int]map[trace.Lane]Timeline)
	for _, tl := range r.Timelines {
		if lanes[tl.Node] == nil {
			lanes[tl.Node] = make(map[trace.Lane]Timeline)
		}
		lanes[tl.Node][tl.Lane] = tl
		if len(tl.Busy) != r.Buckets {
			t.Fatalf("timeline n%d %s has %d buckets, want %d", tl.Node, tl.Lane, len(tl.Busy), r.Buckets)
		}
		var integral float64
		for _, f := range tl.Busy {
			integral += f * float64(r.BucketWidth) * float64(tl.Slots)
		}
		if tl.BusyNS > 0 {
			if rel := math.Abs(integral-float64(tl.BusyNS)) / float64(tl.BusyNS); rel > 0.02 {
				t.Errorf("timeline n%d %s sampled integral %.0f vs exact %d (rel %.3f)",
					tl.Node, tl.Lane, integral, int64(tl.BusyNS), rel)
			}
		}
	}
	// The example run put all map work on node 2 and spread reduce tasks
	// across nodes 0..2.
	if _, ok := lanes[2][trace.LaneMap]; !ok {
		t.Error("no map-lane timeline for node 2")
	}
	if _, ok := lanes[2][trace.LaneSupport]; !ok {
		t.Error("no support-lane timeline for node 2")
	}
	for node := 0; node < 3; node++ {
		if _, ok := lanes[node][trace.LaneReduce]; !ok {
			t.Errorf("no reduce-lane timeline for node %d", node)
		}
	}

	// PathEvents feeds the Gantt highlight: every entry is a real span.
	for _, e := range r.PathEvents() {
		if e.Dur <= 0 {
			t.Errorf("PathEvents contains zero-duration span %+v", e)
		}
	}

	// The rendered report carries the grep-stable blame lines.
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"critical path: job ", "blame[map] map-compute", "blame[reduce] reduce-compute", "utilization ("} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeSynthetic drives the decomposition on a hand-built trace
// where every blame quantity is known exactly, including the causes the
// committed example cannot exercise (copier steal, staging backpressure,
// fabric wait, retry wait, queue wait).
func TestAnalyzeSynthetic(t *testing.T) {
	const msn = int64(time.Millisecond)
	events := []trace.Event{
		// Job: 0..100ms.
		{TS: 0, Dur: 100 * msn, Kind: trace.KindJob, Lane: trace.LaneScheduler, Node: -1, Task: -1},
		// Map wave on node 0 slot 0: task 0 at 0..20ms, task 1 at 22..50ms.
		{TS: 0, Dur: 20 * msn, Kind: trace.KindMapTask, Lane: trace.LaneMap, Node: 0, Task: 0, Slot: 0},
		{TS: 22 * msn, Dur: 28 * msn, Kind: trace.KindMapTask, Lane: trace.LaneMap, Node: 0, Task: 1, Slot: 0},
		// Task 1: 4ms spill-buffer wait, 6ms merge, copier overlap 30..40ms.
		{TS: 24 * msn, Dur: 4 * msn, Kind: trace.KindWaitMap, Lane: trace.LaneMap, Node: 0, Task: 1, Slot: 0},
		{TS: 44 * msn, Dur: 6 * msn, Kind: trace.KindMerge, Lane: trace.LaneMap, Node: 0, Task: 1, Slot: 0},
		// Copier staging onto node 0 (home), overlapping task 1.
		{TS: 30 * msn, Dur: 10 * msn, Kind: trace.KindShuffleCopy, Lane: trace.LaneReduce, Node: 0, Task: 0, Slot: 8},
		// Copier backpressure while staging.
		{TS: 32 * msn, Dur: 3 * msn, Kind: trace.KindWaitStaging, Lane: trace.LaneReduce, Node: 0, Task: 0, Slot: 8},
		// Reduce: queue wait 50..55, task 55..95 with fetch 55..70
		// containing 5ms fabric and 2ms retry; another 3ms fabric later
		// during the merge stream.
		{TS: 50 * msn, Dur: 5 * msn, Kind: trace.KindWaitQueue, Lane: trace.LaneReduce, Node: 1, Task: 0, Slot: 0},
		{TS: 55 * msn, Dur: 40 * msn, Kind: trace.KindReduceTask, Lane: trace.LaneReduce, Node: 1, Task: 0, Slot: 0},
		{TS: 55 * msn, Dur: 15 * msn, Kind: trace.KindShuffleFetch, Lane: trace.LaneReduce, Node: 1, Task: 0, Slot: 0},
		{TS: 56 * msn, Dur: 5 * msn, Kind: trace.KindWaitFabric, Lane: trace.LaneReduce, Node: 1, Task: 0, Slot: 0},
		{TS: 62 * msn, Dur: 2 * msn, Kind: trace.KindWaitRetry, Lane: trace.LaneReduce, Node: 1, Task: 0, Slot: 0},
		{TS: 80 * msn, Dur: 3 * msn, Kind: trace.KindWaitFabric, Lane: trace.LaneReduce, Node: 1, Task: 0, Slot: 0},
	}
	r, err := Analyze(events, Options{Buckets: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.MapEnd != 50*time.Millisecond || r.JobWall != 100*time.Millisecond {
		t.Fatalf("phases: mapEnd %v jobWall %v", r.MapEnd, r.JobWall)
	}

	wantMap := map[Cause]time.Duration{
		CauseMapCompute:  20*time.Millisecond + (28-4-6-8)*time.Millisecond, // task 0 full + task 1 remainder
		CauseSpillSort:   (4 + 6) * time.Millisecond,
		CauseCopierSteal: 8 * time.Millisecond, // copy 30..40 clipped... fully inside task 1, minus nothing
		CauseScheduler:   2 * time.Millisecond, // gap 20..22
	}
	// Copy span 30..40ms does not overlap wait (24..28) or merge
	// (44..50), so steal is the full 10ms.
	wantMap[CauseCopierSteal] = 10 * time.Millisecond
	wantMap[CauseMapCompute] = 20*time.Millisecond + (28-4-6-10)*time.Millisecond
	for c := Cause(0); c < NumCauses; c++ {
		if got, want := r.Map.Causes[c], wantMap[c]; got != want {
			t.Errorf("map blame %s = %v, want %v", c, got, want)
		}
	}

	wantReduce := map[Cause]time.Duration{
		CauseQueueWait:     5 * time.Millisecond,
		CauseFabricWait:    8 * time.Millisecond,
		CauseFetchRetry:    2 * time.Millisecond,
		CauseShuffleIO:     8 * time.Millisecond,  // fetch 15 − fabric 5 − retry 2
		CauseReduceCompute: 22 * time.Millisecond, // 40 − 8 − 2 − 8
		CauseScheduler:     5 * time.Millisecond,  // tail 95..100
	}
	for c := Cause(0); c < NumCauses; c++ {
		if got, want := r.Reduce.Causes[c], wantReduce[c]; got != want {
			t.Errorf("reduce blame %s = %v, want %v", c, got, want)
		}
	}

	// Activity includes the staging backpressure no task span contains.
	if got := r.Activity[CauseStagingBackpressure]; got != 3*time.Millisecond {
		t.Errorf("activity staging-backpressure %v, want 3ms", got)
	}
	if got := r.Activity[CauseQueueWait]; got != 5*time.Millisecond {
		t.Errorf("activity queue-wait %v, want 5ms", got)
	}

	// The queue-wait step carries the recorded span, not a synthetic gap.
	var sawQueue bool
	for _, s := range r.Path {
		if s.Blame[CauseQueueWait] > 0 {
			sawQueue = true
			if s.Synthetic || s.Event.Kind != trace.KindWaitQueue {
				t.Errorf("queue step not backed by the wait-queue span: %+v", s)
			}
		}
	}
	if !sawQueue {
		t.Error("no queue-wait step on the path")
	}
}

// TestAnalyzeErrors pins the failure modes.
func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("empty trace should error")
	}
	only := []trace.Event{{TS: 1, Kind: trace.KindWorkSteal, Lane: trace.LaneScheduler, Node: 0}}
	if _, err := Analyze(only, Options{}); err == nil {
		t.Error("instants-only trace should error")
	}
}
