// Package critpath turns a recorded trace into an explanation: it
// reconstructs the job's span DAG, extracts the critical path — the chain
// of task spans and structural gaps the job's wall clock actually waited
// on — and attributes every nanosecond of it to a named cause (map
// compute, spill/sort pressure, copier CPU/disk steal, staging
// backpressure, fabric wait, fetch retry, shuffle I/O, reduce compute,
// queue wait, governor wait, scheduler slack). This is the analysis the ROADMAP's
// copier-scaling diagnosis and the planned self-tuning controller need:
// the trace substrate records what happened; this package says what it
// cost and why.
//
// The model exploits the runner's barriered phase structure. The reduce
// phase cannot start before the last map task commits, so the critical
// path runs backwards from the job's end: the last-finishing reduce
// attempt, its queue wait, the map-phase barrier, then the chain of map
// attempts that kept the barrier's last slot busy, back to the job start.
// Each task step is decomposed by interval arithmetic over the wait spans
// recorded inside it (the same caller-measured durations the metrics
// layer accounts, so blame totals cross-check job Results), and the
// decomposition of every task — critical or not — is summed into an
// aggregate activity view.
//
// The per-node utilization timelines generalize the Table II idle-fraction
// cross-check: each (node, lane) track integrates busy time (span coverage
// minus wait coverage) over sample buckets, so phase-long averages like
// Result.MapIdleFraction become time-resolved curves.
package critpath

import (
	"fmt"
	"time"

	"mrtext/internal/trace"
)

// Cause names one destination wall time is attributed to.
type Cause int

// The blame taxonomy. Map-phase steps split into the first three causes;
// reduce-phase steps into the shuffle and compute causes; structural gaps
// (phase turnover, slot idle between waves, post-task barrier drain)
// become CauseScheduler.
const (
	// CauseMapCompute is map-task time not explained by waits, merges or
	// copier overlap: user map() plus the emit path.
	CauseMapCompute Cause = iota
	// CauseSpillSort is sort/spill pressure on the critical map chain:
	// map-goroutine time blocked on a full spill buffer plus final-merge
	// time inside the task span.
	CauseSpillSort
	// CauseCopierSteal is critical-map-task time during which shuffle
	// copiers were active against the task's node (reading its disk or
	// staging onto it) — the fan-out contention the copier-scaling
	// question is about.
	CauseCopierSteal
	// CauseStagingBackpressure is copier time blocked on staging-buffer
	// budget (wait-staging spans).
	CauseStagingBackpressure
	// CauseFabricWait is time blocked in simulated fabric transfers on
	// the shuffle path (wait-fabric spans).
	CauseFabricWait
	// CauseFetchRetry is reduce-attempt backoff sleep between shuffle
	// fetch retries (wait-retry spans).
	CauseFetchRetry
	// CauseShuffleIO is shuffle-fetch span time not inside fabric or
	// retry waits: opening and reading segments.
	CauseShuffleIO
	// CauseReduceCompute is reduce-task time not explained by the
	// shuffle causes: merge pulls, user reduce() and output I/O.
	CauseReduceCompute
	// CauseQueueWait is reduce-attempt time between enqueue and a worker
	// slot picking it up (wait-queue spans, or the structural gap between
	// the map barrier and the critical reduce attempt's start on traces
	// recorded before wait-queue existed).
	CauseQueueWait
	// CauseGovernorWait is shuffle-copier time parked by the contention
	// governor (wait-governor spans): staging work deliberately deferred
	// while the map phase was fabric-hot. It appears in the activity view
	// — governed throttling is intentional idle, the inverse of
	// copier-steal.
	CauseGovernorWait
	// CauseScheduler is structural slack: gaps between chained spans,
	// phase turnover, and the tail between the last task and job end.
	CauseScheduler
	// NumCauses is the sentinel count.
	NumCauses
)

var causeNames = [NumCauses]string{
	"map-compute", "spill-sort", "copier-steal", "staging-backpressure",
	"fabric-wait", "fetch-retry", "shuffle-io", "reduce-compute",
	"queue-wait", "governor-wait", "scheduler-other",
}

// String returns the cause's report name.
func (c Cause) String() string {
	if c < 0 || c >= NumCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// Step is one segment of the critical path: a task span (map-task,
// reduce-task), a wait span, or a structural gap, with its wall time
// decomposed by cause.
type Step struct {
	// Event is the span this step follows; for structural gaps it is a
	// zero-duration placeholder whose Kind is the gap's blame cause proxy
	// (Event.Dur == 0 and Synthetic == true).
	Event     trace.Event
	Synthetic bool          // true for gaps not backed by a recorded span
	Start     time.Duration // offset from job start
	End       time.Duration // offset from job start
	Blame     [NumCauses]time.Duration
}

// Wall returns the step's extent on the critical path.
func (s Step) Wall() time.Duration { return s.End - s.Start }

// PhaseBlame is one phase's wall time split by cause. The causes sum to
// Wall up to millisecond-level chaining slack: the critical path covers
// the phase with no gaps, and adjacent steps may overlap by at most the
// chaining tolerance when boundary clock reads straddle each other.
type PhaseBlame struct {
	Wall   time.Duration
	Causes [NumCauses]time.Duration
}

// Fraction returns cause c's share of the phase wall in [0,1].
func (p PhaseBlame) Fraction(c Cause) float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Causes[c]) / float64(p.Wall)
}

// Timeline is one (node, lane) utilization track: busy fraction of the
// lane's slot capacity per sample bucket, plus the exact (unsampled)
// integrals the Table II cross-check uses.
type Timeline struct {
	Node       int
	Lane       trace.Lane
	Slots      int           // distinct execution slots observed on the track
	Busy       []float64     // per-bucket busy fraction of slot capacity, in [0,1]
	BusyNS     time.Duration // exact Σ over slots of (span coverage − wait coverage)
	WaitNS     time.Duration // exact Σ over slots of wait-span coverage
	OccupiedNS time.Duration // exact Σ over slots of non-wait span coverage
}

// Report is the full analysis of one recorded job.
type Report struct {
	JobWall time.Duration // job span extent
	MapEnd  time.Duration // map→reduce barrier, offset from job start
	Map     PhaseBlame    // critical-path blame over [0, MapEnd]
	Reduce  PhaseBlame    // critical-path blame over [MapEnd, JobWall]
	Path    []Step        // the critical path in time order, covering [0, JobWall]
	// Activity is the aggregate view: every task span in the trace —
	// critical or not — decomposed by the same rules and summed, plus the
	// free-standing wait spans (staging, queue). Unlike the critical-path
	// blame it does not sum to wall time; it sums to total decomposed
	// span time, the serialized Fig. 2-style denominator.
	Activity    [NumCauses]time.Duration
	Timelines   []Timeline // sorted by (node, lane)
	Buckets     int
	BucketWidth time.Duration
}

// PathEvents returns the recorded spans on the critical path (synthetic
// gap steps excluded) — the marked set for trace.GanttMarked.
func (r *Report) PathEvents() []trace.Event {
	evs := make([]trace.Event, 0, len(r.Path))
	for _, s := range r.Path {
		if !s.Synthetic {
			evs = append(evs, s.Event)
		}
	}
	return evs
}

// MapLaneIdleFraction returns wait coverage over occupied coverage across
// the map-lane timelines — the timeline-derived "Map, Idle" of Table II,
// which must agree with Result.MapIdleFraction.
func (r *Report) MapLaneIdleFraction() float64 {
	var wait, occ time.Duration
	for _, tl := range r.Timelines {
		if tl.Lane == trace.LaneMap {
			wait += tl.WaitNS
			occ += tl.OccupiedNS
		}
	}
	if occ == 0 {
		return 0
	}
	return float64(wait) / float64(occ)
}

// SupportLaneIdleFraction returns support-lane wait coverage over
// map-lane occupied coverage — the timeline-derived "Support, Idle" of
// Table II (the denominator is map-task wall, as in DeriveIdle).
func (r *Report) SupportLaneIdleFraction() float64 {
	var wait, occ time.Duration
	for _, tl := range r.Timelines {
		switch tl.Lane {
		case trace.LaneSupport:
			wait += tl.WaitNS
		case trace.LaneMap:
			occ += tl.OccupiedNS
		}
	}
	if occ == 0 {
		return 0
	}
	return float64(wait) / float64(occ)
}

// Options configures Analyze.
type Options struct {
	// Buckets is the utilization timeline resolution (default 60).
	Buckets int
}

// epsNS is the slack allowed when chaining spans whose boundary clock
// reads happen a few statements apart.
const epsNS = int64(2 * time.Millisecond)

// Analyze reconstructs the critical path, blame attribution, activity
// totals and utilization timelines from a recorded trace. It accepts
// events from Tracer.Events or trace.ParseJSON; instants are ignored. It
// errors when the trace holds no spans.
func Analyze(events []trace.Event, opt Options) (*Report, error) {
	if opt.Buckets <= 0 {
		opt.Buckets = 60
	}
	if opt.Buckets > 4096 {
		opt.Buckets = 4096
	}
	ix := buildIndex(events)
	if len(ix.spans) == 0 {
		return nil, fmt.Errorf("critpath: trace holds no span events")
	}
	r := &Report{Buckets: opt.Buckets}
	r.JobWall = time.Duration(ix.jobEnd - ix.jobStart)
	r.MapEnd = time.Duration(ix.mapEnd - ix.jobStart)

	// The critical path, built forward by assembling the map chain, the
	// phase turnover, and the critical reduce attempt.
	r.Path = append(r.Path, ix.mapChain()...)
	r.Path = append(r.Path, ix.reduceChain()...)

	for _, s := range r.Path {
		phase := &r.Map
		if s.Start >= r.MapEnd {
			phase = &r.Reduce
		}
		for c := Cause(0); c < NumCauses; c++ {
			phase.Causes[c] += s.Blame[c]
		}
	}
	r.Map.Wall = r.MapEnd
	r.Reduce.Wall = r.JobWall - r.MapEnd

	// Aggregate activity: decompose every task span, then add the
	// free-standing waits no task span contains.
	for _, m := range ix.kind[trace.KindMapTask] {
		b := ix.decomposeMap(m)
		for c := Cause(0); c < NumCauses; c++ {
			r.Activity[c] += b[c]
		}
	}
	for _, rt := range ix.kind[trace.KindReduceTask] {
		b := ix.decomposeReduce(rt)
		for c := Cause(0); c < NumCauses; c++ {
			r.Activity[c] += b[c]
		}
	}
	for _, e := range ix.kind[trace.KindWaitStaging] {
		r.Activity[CauseStagingBackpressure] += e.Duration()
	}
	for _, e := range ix.kind[trace.KindWaitQueue] {
		r.Activity[CauseQueueWait] += e.Duration()
	}
	for _, e := range ix.kind[trace.KindWaitGovernor] {
		r.Activity[CauseGovernorWait] += e.Duration()
	}

	r.Timelines, r.BucketWidth = ix.timelines(opt.Buckets)
	return r, nil
}

// ---------------------------------------------------------------------
// Index: the span DAG's adjacency structures.

type nodeTask struct {
	node, task int32
}

type attemptKey struct {
	node, task, slot int32
}

type index struct {
	spans []trace.Event // all span (non-instant) events
	kind  map[trace.Kind][]trace.Event

	jobStart, jobEnd, mapEnd int64

	waitMapBy map[nodeTask][]trace.Event // wait-map spans by owning task
	mergeBy   map[nodeTask][]trace.Event // merge spans by owning task
	fetchBy   map[attemptKey][]trace.Event
	fabricBy  map[attemptKey][]trace.Event
	retryBy   map[attemptKey][]trace.Event
	queueBy   map[attemptKey][]trace.Event
	// copyByNode holds shuffle-copy spans indexed by every node they
	// contend with: the staging home they run on (span.Node) and the
	// source node whose disk they read (the node of the map task the
	// span's Task names).
	copyByNode map[int32][]trace.Event
}

func buildIndex(events []trace.Event) *index {
	ix := &index{
		kind:       make(map[trace.Kind][]trace.Event),
		waitMapBy:  make(map[nodeTask][]trace.Event),
		mergeBy:    make(map[nodeTask][]trace.Event),
		fetchBy:    make(map[attemptKey][]trace.Event),
		fabricBy:   make(map[attemptKey][]trace.Event),
		retryBy:    make(map[attemptKey][]trace.Event),
		queueBy:    make(map[attemptKey][]trace.Event),
		copyByNode: make(map[int32][]trace.Event),
	}
	var haveJob bool
	minTS := int64(0)
	maxEnd := int64(0)
	first := true
	for _, e := range events {
		if e.Kind.Instant() {
			continue
		}
		ix.spans = append(ix.spans, e)
		ix.kind[e.Kind] = append(ix.kind[e.Kind], e)
		if first || e.TS < minTS {
			minTS = e.TS
		}
		if end := e.TS + e.Dur; first || end > maxEnd {
			maxEnd = end
		}
		first = false
		switch e.Kind {
		case trace.KindJob:
			haveJob = true
			ix.jobStart, ix.jobEnd = e.TS, e.TS+e.Dur
		case trace.KindWaitMap:
			k := nodeTask{e.Node, e.Task}
			ix.waitMapBy[k] = append(ix.waitMapBy[k], e)
		case trace.KindMerge:
			k := nodeTask{e.Node, e.Task}
			ix.mergeBy[k] = append(ix.mergeBy[k], e)
		case trace.KindShuffleFetch:
			k := attemptKey{e.Node, e.Task, e.Slot}
			ix.fetchBy[k] = append(ix.fetchBy[k], e)
		case trace.KindWaitFabric:
			k := attemptKey{e.Node, e.Task, e.Slot}
			ix.fabricBy[k] = append(ix.fabricBy[k], e)
		case trace.KindWaitRetry:
			k := attemptKey{e.Node, e.Task, e.Slot}
			ix.retryBy[k] = append(ix.retryBy[k], e)
		case trace.KindWaitQueue:
			k := attemptKey{e.Node, e.Task, e.Slot}
			ix.queueBy[k] = append(ix.queueBy[k], e)
		}
	}
	if !haveJob {
		ix.jobStart, ix.jobEnd = minTS, maxEnd
	}
	// Map-phase barrier: the last map-task end (any attempt).
	ix.mapEnd = ix.jobStart
	for _, m := range ix.kind[trace.KindMapTask] {
		if end := m.TS + m.Dur; end > ix.mapEnd {
			ix.mapEnd = end
		}
	}
	if ix.mapEnd > ix.jobEnd {
		ix.mapEnd = ix.jobEnd
	}
	// Source node per map task (last-ending attempt wins, matching the
	// output snapshot reduce attempts actually read).
	srcNode := make(map[int32]int32)
	srcEnd := make(map[int32]int64)
	for _, m := range ix.kind[trace.KindMapTask] {
		if end := m.TS + m.Dur; end >= srcEnd[m.Task] {
			srcEnd[m.Task] = end
			srcNode[m.Task] = m.Node
		}
	}
	for _, cp := range ix.kind[trace.KindShuffleCopy] {
		ix.copyByNode[cp.Node] = append(ix.copyByNode[cp.Node], cp)
		if sn, ok := srcNode[cp.Task]; ok && sn != cp.Node {
			ix.copyByNode[sn] = append(ix.copyByNode[sn], cp)
		}
	}
	return ix
}

// ---------------------------------------------------------------------
// Critical-path construction.

// mapChain walks the map-phase critical chain backwards from the barrier:
// the last-ending map attempt, then on the same (node, slot) the attempt
// that ended just before it started, until the job start. Gaps between
// chained attempts (scheduling, split handoff) become scheduler steps.
// The returned steps run forward in time and cover [0, MapEnd] exactly.
func (ix *index) mapChain() []Step {
	maps := ix.kind[trace.KindMapTask]
	if len(maps) == 0 {
		if ix.mapEnd > ix.jobStart {
			return []Step{ix.gapStep(ix.jobStart, ix.mapEnd, CauseScheduler)}
		}
		return nil
	}
	// Last-ending map attempt seeds the chain.
	cur := maps[0]
	for _, m := range maps[1:] {
		if m.TS+m.Dur > cur.TS+cur.Dur {
			cur = m
		}
	}
	var rev []Step
	// Barrier drain: between the chain head's end and the true barrier
	// (only non-zero when another slot's task ended later — the chain
	// head IS the max, so this is zero by construction).
	for i := 0; i <= len(maps); i++ {
		rev = append(rev, ix.taskStep(cur, ix.decomposeMap(cur)))
		// Predecessor on the same slot: latest attempt ending at or
		// before cur's start (plus chaining slack).
		var prev *trace.Event
		for j := range maps {
			m := &maps[j]
			if m.Node != cur.Node || m.Slot != cur.Slot {
				continue
			}
			if m.TS+m.Dur > cur.TS+epsNS || (m.TS == cur.TS && m.Dur == cur.Dur) {
				continue
			}
			if prev == nil || m.TS+m.Dur > prev.TS+prev.Dur {
				prev = m
			}
		}
		if prev == nil {
			break
		}
		if gap := cur.TS - (prev.TS + prev.Dur); gap > 0 {
			rev = append(rev, ix.gapStep(prev.TS+prev.Dur, cur.TS, CauseScheduler))
		}
		cur = *prev
	}
	// Head gap back to the job start.
	if cur.TS > ix.jobStart {
		rev = append(rev, ix.gapStep(ix.jobStart, cur.TS, CauseScheduler))
	}
	// Reverse into forward time order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// reduceChain covers [MapEnd, JobWall]: phase turnover, the critical
// reduce attempt's queue wait, the attempt itself, and the barrier drain
// to the job end.
func (ix *index) reduceChain() []Step {
	reduces := ix.kind[trace.KindReduceTask]
	if len(reduces) == 0 {
		if ix.jobEnd > ix.mapEnd {
			return []Step{ix.gapStep(ix.mapEnd, ix.jobEnd, CauseScheduler)}
		}
		return nil
	}
	crit := reduces[0]
	for _, rt := range reduces[1:] {
		if rt.TS+rt.Dur > crit.TS+crit.Dur {
			crit = rt
		}
	}
	var steps []Step
	qStart := crit.TS // where queue wait starts; refined by the recorded span
	var queueSpan *trace.Event
	for _, q := range ix.queueBy[attemptKey{crit.Node, crit.Task, crit.Slot}] {
		if q.TS+q.Dur <= crit.TS+epsNS {
			if queueSpan == nil || q.TS+q.Dur > queueSpan.TS+queueSpan.Dur {
				qq := q
				queueSpan = &qq
			}
		}
	}
	if queueSpan != nil {
		qStart = queueSpan.TS
	} else if crit.TS > ix.mapEnd {
		// Pre-wait-queue traces: the structural gap between the barrier
		// and the critical attempt's start is queue wait by construction
		// (the attempt was enqueued at phase start).
		qStart = ix.mapEnd
	}
	if qStart < ix.mapEnd {
		qStart = ix.mapEnd
	}
	if qStart > crit.TS {
		qStart = crit.TS
	}
	if qStart > ix.mapEnd {
		steps = append(steps, ix.gapStep(ix.mapEnd, qStart, CauseScheduler))
	}
	if crit.TS > qStart {
		if queueSpan != nil {
			st := ix.gapStep(qStart, crit.TS, CauseQueueWait)
			st.Event = *queueSpan
			st.Synthetic = false
			steps = append(steps, st)
		} else {
			steps = append(steps, ix.gapStep(qStart, crit.TS, CauseQueueWait))
		}
	}
	steps = append(steps, ix.taskStep(crit, ix.decomposeReduce(crit)))
	if end := crit.TS + crit.Dur; end < ix.jobEnd {
		steps = append(steps, ix.gapStep(end, ix.jobEnd, CauseScheduler))
	}
	return steps
}

// taskStep wraps a decomposed task span as a critical-path step.
func (ix *index) taskStep(e trace.Event, blame [NumCauses]time.Duration) Step {
	return Step{
		Event: e,
		Start: time.Duration(e.TS - ix.jobStart),
		End:   time.Duration(e.TS + e.Dur - ix.jobStart),
		Blame: blame,
	}
}

// gapStep makes a synthetic step blaming [lo, hi) entirely on cause.
func (ix *index) gapStep(lo, hi int64, cause Cause) Step {
	s := Step{
		Synthetic: true,
		Start:     time.Duration(lo - ix.jobStart),
		End:       time.Duration(hi - ix.jobStart),
	}
	s.Blame[cause] = time.Duration(hi - lo)
	return s
}

// decomposeMap splits one map-task span by cause: wait-map and merge
// coverage is spill/sort pressure, remaining overlap with shuffle-copy
// activity against the task's node is copier steal, and the rest is map
// compute. The causes sum to the span duration exactly.
func (ix *index) decomposeMap(m trace.Event) [NumCauses]time.Duration {
	var blame [NumCauses]time.Duration
	lo, hi := m.TS, m.TS+m.Dur
	waits := normalize(clip(ix.waitMapBy[nodeTask{m.Node, m.Task}], lo, hi))
	merges := subtract(normalize(clip(ix.mergeBy[nodeTask{m.Node, m.Task}], lo, hi)), waits)
	steal := subtract(subtract(normalize(clip(ix.copyByNode[m.Node], lo, hi)), waits), merges)
	blame[CauseSpillSort] = time.Duration(total(waits) + total(merges))
	blame[CauseCopierSteal] = time.Duration(total(steal))
	rest := time.Duration(hi-lo) - blame[CauseSpillSort] - blame[CauseCopierSteal]
	if rest < 0 {
		rest = 0
	}
	blame[CauseMapCompute] = rest
	return blame
}

// decomposeReduce splits one reduce-task span by cause: fabric waits,
// retry backoff, remaining shuffle-fetch coverage (segment open/read),
// and the compute remainder (merge pulls, user reduce, output I/O). The
// causes sum to the span duration exactly.
func (ix *index) decomposeReduce(rt trace.Event) [NumCauses]time.Duration {
	var blame [NumCauses]time.Duration
	lo, hi := rt.TS, rt.TS+rt.Dur
	k := attemptKey{rt.Node, rt.Task, rt.Slot}
	fabric := normalize(clip(ix.fabricBy[k], lo, hi))
	retry := subtract(normalize(clip(ix.retryBy[k], lo, hi)), fabric)
	fetch := subtract(subtract(normalize(clip(ix.fetchBy[k], lo, hi)), fabric), retry)
	blame[CauseFabricWait] = time.Duration(total(fabric))
	blame[CauseFetchRetry] = time.Duration(total(retry))
	blame[CauseShuffleIO] = time.Duration(total(fetch))
	rest := time.Duration(hi-lo) - blame[CauseFabricWait] - blame[CauseFetchRetry] - blame[CauseShuffleIO]
	if rest < 0 {
		rest = 0
	}
	blame[CauseReduceCompute] = rest
	return blame
}

// ---------------------------------------------------------------------
// Utilization timelines.

// waitKind reports whether k records blocked (idle) time rather than
// occupancy. Fabric waits count as busy I/O: the lane is occupied moving
// bytes, which is Table II's accounting too.
func waitKind(k trace.Kind) bool {
	switch k {
	case trace.KindWaitMap, trace.KindWaitSupport, trace.KindWaitStaging,
		trace.KindWaitRetry, trace.KindWaitQueue, trace.KindWaitGovernor:
		return true
	}
	return false
}

// timelines integrates busy coverage per (node, lane) into buckets.
func (ix *index) timelines(buckets int) ([]Timeline, time.Duration) {
	window := ix.jobEnd - ix.jobStart
	if window <= 0 {
		window = 1
	}
	bw := (window + int64(buckets) - 1) / int64(buckets)
	if bw <= 0 {
		bw = 1
	}

	type slotKey struct {
		node int32
		lane trace.Lane
		slot int32
	}
	occ := make(map[slotKey][]iv)
	wai := make(map[slotKey][]iv)
	for _, e := range ix.spans {
		if e.Node < 0 || e.Kind == trace.KindJob {
			continue
		}
		k := slotKey{e.Node, e.Lane, e.Slot}
		in := iv{e.TS, e.TS + e.Dur}
		if waitKind(e.Kind) {
			wai[k] = append(wai[k], in)
		} else {
			occ[k] = append(occ[k], in)
		}
	}
	type laneKey struct {
		node int32
		lane trace.Lane
	}
	rows := make(map[laneKey]*Timeline)
	slotsSeen := make(map[laneKey]map[int32]bool)
	keys := make(map[slotKey]bool)
	for k := range occ {
		keys[k] = true
	}
	for k := range wai {
		keys[k] = true
	}
	for k := range keys {
		lk := laneKey{k.node, k.lane}
		row := rows[lk]
		if row == nil {
			row = &Timeline{Node: int(k.node), Lane: k.lane, Busy: make([]float64, buckets)}
			rows[lk] = row
			slotsSeen[lk] = make(map[int32]bool)
		}
		slotsSeen[lk][k.slot] = true
		occU := normalize(clipIv(occ[k], ix.jobStart, ix.jobEnd))
		waiU := normalize(clipIv(wai[k], ix.jobStart, ix.jobEnd))
		busy := subtract(occU, waiU)
		row.OccupiedNS += time.Duration(total(occU))
		row.WaitNS += time.Duration(total(waiU))
		row.BusyNS += time.Duration(total(busy))
		for _, b := range busy {
			loB := int((b.lo - ix.jobStart) / bw)
			hiB := int((b.hi - 1 - ix.jobStart) / bw)
			for bi := loB; bi <= hiB && bi < buckets; bi++ {
				if bi < 0 {
					continue
				}
				blo := ix.jobStart + int64(bi)*bw
				bhi := blo + bw
				row.Busy[bi] += float64(overlap(b, iv{blo, bhi}))
			}
		}
	}
	out := make([]Timeline, 0, len(rows))
	for lk, row := range rows {
		row.Slots = len(slotsSeen[lk])
		den := float64(bw) * float64(row.Slots)
		for i := range row.Busy {
			row.Busy[i] /= den
			if row.Busy[i] > 1 {
				row.Busy[i] = 1
			}
		}
		out = append(out, *row)
	}
	sortTimelines(out)
	return out, time.Duration(bw)
}

func sortTimelines(ts []Timeline) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := &ts[j-1], &ts[j]
			if a.Node < b.Node || (a.Node == b.Node && a.Lane <= b.Lane) {
				break
			}
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

// ---------------------------------------------------------------------
// Interval arithmetic. Intervals are half-open [lo, hi) nanosecond pairs.

type iv struct{ lo, hi int64 }

// clip converts spans to intervals clipped to [lo, hi).
func clip(evs []trace.Event, lo, hi int64) []iv {
	out := make([]iv, 0, len(evs))
	for _, e := range evs {
		a, b := e.TS, e.TS+e.Dur
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			out = append(out, iv{a, b})
		}
	}
	return out
}

// clipIv clips intervals to [lo, hi).
func clipIv(ivs []iv, lo, hi int64) []iv {
	out := make([]iv, 0, len(ivs))
	for _, in := range ivs {
		a, b := in.lo, in.hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			out = append(out, iv{a, b})
		}
	}
	return out
}

// normalize sorts and merges intervals into a disjoint ascending set.
func normalize(ivs []iv) []iv {
	if len(ivs) <= 1 {
		return ivs
	}
	for i := 1; i < len(ivs); i++ { // insertion sort: sets are small
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	out := ivs[:1]
	for _, in := range ivs[1:] {
		last := &out[len(out)-1]
		if in.lo <= last.hi {
			if in.hi > last.hi {
				last.hi = in.hi
			}
		} else {
			out = append(out, in)
		}
	}
	return out
}

// subtract removes b's coverage from a. Both must be normalized; the
// result is normalized.
func subtract(a, b []iv) []iv {
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	var out []iv
	j := 0
	for _, in := range a {
		lo := in.lo
		for j < len(b) && b[j].hi <= lo {
			j++
		}
		k := j
		for k < len(b) && b[k].lo < in.hi {
			if b[k].lo > lo {
				out = append(out, iv{lo, b[k].lo})
			}
			if b[k].hi > lo {
				lo = b[k].hi
			}
			k++
		}
		if lo < in.hi {
			out = append(out, iv{lo, in.hi})
		}
	}
	return out
}

// total sums interval lengths.
func total(ivs []iv) int64 {
	var sum int64
	for _, in := range ivs {
		sum += in.hi - in.lo
	}
	return sum
}

// overlap returns the length of a ∩ b.
func overlap(a, b iv) int64 {
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
