// Invertedsearch: build an inverted index over a corpus with the optimized
// runtime, then serve lookups from the index — the "web data processing"
// workload that motivated the paper's text-centric focus.
//
//	go run ./examples/invertedsearch
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"strings"

	"mrtext"
)

func main() {
	c, err := mrtext.NewCluster(mrtext.LocalSmallCluster())
	if err != nil {
		log.Fatal(err)
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), 4<<20); err != nil {
		log.Fatal(err)
	}

	// Build the index with both optimizations; the output format is
	// "word<TAB>doc:off doc:off ...".
	job := mrtext.InvertedIndex("corpus.txt")
	job.FreqBuf = mrtext.FreqBufText()
	job.SpillMatcher = true
	res, err := mrtext.Run(c, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v over %d map + %d reduce tasks\n",
		res.Wall.Round(1e6), res.MapTasks, res.ReduceTasks)

	// Load the index into memory (a real system would serve it from the
	// DFS; the point here is exercising the output).
	index := map[string][]string{}
	var words int
	for p := range res.Outputs {
		data, err := mrtext.ReadOutput(c, res, p)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		for sc.Scan() {
			line := sc.Text()
			tab := strings.IndexByte(line, '\t')
			if tab < 0 {
				continue
			}
			word := line[:tab]
			index[word] = strings.Fields(line[tab+1:])
			words++
		}
	}
	fmt.Printf("index holds %d distinct words\n", words)

	// Query a few words of very different frequencies: "a" is the rank-1
	// word of the synthetic vocabulary, deeper ranks get rarer.
	for _, q := range []string{"a", "m", "dd", "xyz"} {
		postings := index[q]
		if postings == nil {
			fmt.Printf("  %-6q not in corpus\n", q)
			continue
		}
		show := postings
		if len(show) > 4 {
			show = show[:4]
		}
		fmt.Printf("  %-6q %7d occurrences, first at %v\n", q, len(postings), show)
	}
}
