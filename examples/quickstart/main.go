// Quickstart: run WordCount on a simulated cluster, first with stock
// MapReduce and then with the paper's two optimizations, and compare
// runtimes and cost breakdowns.
//
//	go run ./examples/quickstart
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"

	"mrtext"
)

func main() {
	// A 6-node cluster shaped like the paper's local testbed: 12 mappers,
	// 12 reducers, throttled disks, gigabit fabric.
	c, err := mrtext.NewCluster(mrtext.LocalSmallCluster())
	if err != nil {
		log.Fatal(err)
	}

	// 8 MiB of Zipf-distributed text (stands in for a Wikipedia dump).
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), 8<<20); err != nil {
		log.Fatal(err)
	}

	// Baseline run.
	base := mrtext.WordCount("corpus.txt")
	base.Name = "wc-baseline"
	baseRes, err := mrtext.Run(c, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  %v\n", baseRes.Wall.Round(1e6))
	fmt.Println(baseRes.Agg.Breakdown())

	// Optimized run: frequency-buffering + spill-matcher, no user-code
	// changes — just two switches on the job.
	opt := mrtext.WordCount("corpus.txt")
	opt.Name = "wc-optimized"
	opt.FreqBuf = mrtext.FreqBufText()
	opt.SpillMatcher = true
	optRes, err := mrtext.Run(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: %v (%.1f%% of baseline)\n",
		optRes.Wall.Round(1e6), 100*float64(optRes.Wall)/float64(baseRes.Wall))
	fmt.Println(optRes.Agg.Breakdown())

	// Outputs are identical — print the five most common words.
	fmt.Println("top words (from partition files):")
	type wc struct {
		word  string
		count int64
	}
	var top []wc
	for p := range optRes.Outputs {
		data, err := mrtext.ReadOutput(c, optRes, p)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			var w string
			var n int64
			if _, err := fmt.Sscanf(sc.Text(), "%s\t%d", &w, &n); err == nil {
				top = append(top, wc{w, n})
			}
		}
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].count > top[i].count {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	if len(top) > 5 {
		top = top[:5]
	}
	for _, t := range top {
		fmt.Printf("  %-8s %d\n", t.word, t.count)
	}
}
