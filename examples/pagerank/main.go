// Pagerank: iterate PageRank to convergence by chaining MapReduce jobs —
// each iteration's partition outputs become the next iteration's inputs,
// exactly how multi-pass graph jobs ran on Hadoop. Demonstrates job
// chaining through the DFS and the optimizations on a graph workload.
//
//	go run ./examples/pagerank
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"math"
	"sort"
	"strconv"
	"strings"

	"mrtext"
)

const iterations = 5

func main() {
	c, err := mrtext.NewCluster(mrtext.LocalSmallCluster())
	if err != nil {
		log.Fatal(err)
	}
	graph := mrtext.DefaultGraph()
	graph.Pages = 20_000
	if err := mrtext.GenerateWebGraph(c, "crawl-0.tsv", graph); err != nil {
		log.Fatal(err)
	}

	inputs := []string{"crawl-0.tsv"}
	prev := map[string]float64{}
	for iter := 1; iter <= iterations; iter++ {
		job := mrtext.PageRank(inputs[0], graph.Pages)
		job.Inputs = inputs // every partition file of the previous pass
		job.Name = fmt.Sprintf("pagerank-iter%d", iter)
		job.OutputPrefix = fmt.Sprintf("crawl-%d", iter)
		job.FreqBuf = mrtext.FreqBufLog()
		job.SpillMatcher = true
		res, err := mrtext.Run(c, job)
		if err != nil {
			log.Fatal(err)
		}
		inputs = res.Outputs

		// Measure rank movement for a convergence report.
		ranks := map[string]float64{}
		for p := range res.Outputs {
			data, err := mrtext.ReadOutput(c, res, p)
			if err != nil {
				log.Fatal(err)
			}
			sc := bufio.NewScanner(bytes.NewReader(data))
			sc.Buffer(make([]byte, 1<<20), 16<<20)
			for sc.Scan() {
				f := strings.SplitN(sc.Text(), "\t", 3)
				if len(f) < 2 {
					continue
				}
				r, err := strconv.ParseFloat(f[1], 64)
				if err != nil {
					continue // skip malformed rank rows
				}
				ranks[f[0]] = r
			}
		}
		var delta float64
		for url, r := range ranks {
			delta += math.Abs(r - prev[url])
		}
		prev = ranks
		fmt.Printf("iteration %d: %v, %d pages, L1 rank delta %.6f\n",
			iter, res.Wall.Round(1e6), len(ranks), delta)
	}

	// Final top pages.
	type pr struct {
		url  string
		rank float64
	}
	var top []pr
	for url, r := range prev {
		top = append(top, pr{url, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("highest-ranked pages:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %-20s %.6e\n", top[i].url, top[i].rank)
	}
}
