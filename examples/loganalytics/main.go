// Loganalytics: the paper's two relational workloads on a web-server
// access log — revenue aggregation per URL (GROUP BY) and the visits ⋈
// rankings join — run back to back on one cluster, demonstrating that the
// optimizations never hurt relational jobs even though they target
// text-centric ones.
//
//	go run ./examples/loganalytics
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"mrtext"
)

func main() {
	c, err := mrtext.NewCluster(mrtext.LocalSmallCluster())
	if err != nil {
		log.Fatal(err)
	}
	logCfg := mrtext.DefaultLog()
	if err := mrtext.GenerateUserVisits(c, "visits.log", logCfg, 8<<20); err != nil {
		log.Fatal(err)
	}
	if err := mrtext.GenerateRankings(c, "rankings.tbl", logCfg); err != nil {
		log.Fatal(err)
	}

	// SELECT destURL, sum(adRevenue) FROM UserVisits GROUP BY destURL
	sum := mrtext.AccessLogSum("visits.log")
	sum.FreqBuf = mrtext.FreqBufLog()
	sum.SpillMatcher = true
	sumRes, err := mrtext.Run(c, sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AccessLogSum finished in %v\n", sumRes.Wall.Round(1e6))

	type rev struct {
		url   string
		cents int64
	}
	var top []rev
	for p := range sumRes.Outputs {
		data, err := mrtext.ReadOutput(c, sumRes, p)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			parts := strings.SplitN(sc.Text(), "\t", 2)
			if len(parts) != 2 {
				continue
			}
			cents, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				continue // skip malformed revenue rows
			}
			top = append(top, rev{parts[0], cents})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].cents > top[j].cents })
	fmt.Println("top revenue URLs:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %-28s $%.2f\n", top[i].url, float64(top[i].cents)/100)
	}

	// SELECT sourceIP, adRevenue, pageRank FROM UserVisits ⋈ Rankings
	join := mrtext.AccessLogJoin("visits.log", "rankings.tbl")
	join.SpillMatcher = true // no combiner → frequency-buffering has nothing to aggregate
	joinRes, err := mrtext.Run(c, join)
	if err != nil {
		log.Fatal(err)
	}
	var joined int
	for p := range joinRes.Outputs {
		data, err := mrtext.ReadOutput(c, joinRes, p)
		if err != nil {
			log.Fatal(err)
		}
		joined += bytes.Count(data, []byte("\n"))
	}
	fmt.Printf("AccessLogJoin finished in %v, %d joined rows\n", joinRes.Wall.Round(1e6), joined)
}
