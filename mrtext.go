// Package mrtext is the public façade of the library: a MapReduce runtime
// with the two text-centric optimizations of Hsiao, Cafarella and
// Narayanasamy, "Reducing MapReduce Abstraction Costs for Text-Centric
// Applications" (ICPP 2014) — frequency-buffering and the spill-matcher —
// running on a simulated multi-node cluster in a single process.
//
// A minimal program:
//
//	c, _ := mrtext.NewCluster(mrtext.LocalSmallCluster())
//	_ = mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), 16<<20)
//	job := mrtext.WordCount("corpus.txt")
//	job.FreqBuf = mrtext.FreqBufText() // enable frequency-buffering
//	job.SpillMatcher = true            // enable the spill-matcher
//	res, _ := mrtext.Run(c, job)
//	fmt.Println(res.Wall, res.Agg.Breakdown())
//
// The underlying packages live in internal/; this package re-exports the
// complete user-facing surface: cluster construction, dataset generation,
// the six paper applications plus SynText, job execution, the sequential
// reference executor, and the instrumentation types experiments consume.
package mrtext

import (
	"context"
	"errors"
	"fmt"
	"io"

	"mrtext/internal/apps"
	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/core/spillmatch"
	"mrtext/internal/metrics"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
	"mrtext/internal/trace"
	"mrtext/internal/trace/critpath"
)

// Core job-authoring types, re-exported from the runtime.
type (
	// Job specifies a MapReduce job; see mr.Job for field documentation.
	Job = mr.Job
	// Result summarizes a completed job.
	Result = mr.Result
	// TaskReport carries one task's instrumentation.
	TaskReport = mr.TaskReport
	// Mapper is the user map() contract.
	Mapper = mr.Mapper
	// MapperFunc adapts a function to Mapper.
	MapperFunc = mr.MapperFunc
	// Reducer is the user reduce() contract.
	Reducer = mr.Reducer
	// ReducerFunc adapts a function to Reducer.
	ReducerFunc = mr.ReducerFunc
	// Collector receives emitted key/value pairs.
	Collector = mr.Collector
	// ValueIter streams one reduce group's values.
	ValueIter = mr.ValueIter
	// CombineFunc is the user combine() contract.
	CombineFunc = mr.CombineFunc
	// FreqBufConfig configures frequency-buffering on a Job.
	FreqBufConfig = mr.FreqBufConfig
	// Hists is a per-job latency-histogram sink; see Job.Hists.
	Hists = mr.Hists
	// SpillMatcherConfig configures the adaptive spill controller.
	SpillMatcherConfig = spillmatch.Config
	// Cluster is a running simulated cluster.
	Cluster = cluster.Cluster
	// ClusterConfig sizes a cluster.
	ClusterConfig = cluster.Config
	// ChaosConfig configures deterministic fault injection; assign one to
	// ClusterConfig.Chaos to exercise the runtime's fault tolerance (see
	// internal/chaos for the site and scheduling model).
	ChaosConfig = chaos.Config
	// Snapshot is aggregated instrumentation (operation times, counters).
	Snapshot = metrics.Snapshot
	// Op is one fine-grained pipeline operation (Table I taxonomy).
	Op = metrics.Op
	// CorpusConfig parameterizes the Zipfian corpus generator.
	CorpusConfig = textgen.CorpusConfig
	// LogConfig parameterizes the access-log generators.
	LogConfig = textgen.LogConfig
	// GraphConfig parameterizes the web-graph generator.
	GraphConfig = textgen.GraphConfig
	// SynTextConfig parameterizes the SynText benchmark.
	SynTextConfig = apps.SynTextConfig
	// Tracer records a job's span timeline for Perfetto export; assign one
	// to Job.Trace (see internal/trace for the event model).
	Tracer = trace.Tracer
	// TraceReport is a critical-path blame report derived from a recorded
	// trace (see internal/trace/critpath for the analysis model).
	TraceReport = critpath.Report
)

// NewCluster builds a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// LocalSmallCluster mirrors the paper's local testbed (6 nodes, 12 mappers
// + 12 reducers, throttled disks, gigabit fabric).
func LocalSmallCluster() ClusterConfig { return cluster.LocalSmall() }

// EC2Cluster mirrors the paper's 20-node EC2 testbed.
func EC2Cluster() ClusterConfig { return cluster.EC2Large() }

// FastCluster is an unthrottled cluster for tests and demos.
func FastCluster(nodes int) ClusterConfig { return cluster.Fast(nodes) }

// Run executes a job on the cluster.
func Run(c *Cluster, job *Job) (*Result, error) { return mr.Run(c, job) }

// RunContext executes a job on the cluster under ctx. Canceling ctx
// cancels the job: in-flight task attempts unwind at their next record
// boundary, attempt temp files are swept, and committed intermediates are
// removed before RunContext returns the cancellation error.
func RunContext(ctx context.Context, c *Cluster, job *Job) (*Result, error) {
	return mr.RunContext(ctx, c, job)
}

// NewHists returns a private latency-histogram sink; assign it to
// Job.Hists so a job's shuffle/reduce latency distributions stay isolated
// from concurrent jobs (fold them into the process-wide registry
// afterwards with its MergeIntoRegistry).
func NewHists() *Hists { return mr.NewHists() }

// RunReference executes a job sequentially with no optimizations and no
// parallelism: the semantic ground truth for output comparison.
func RunReference(c *Cluster, job *Job) (map[int][]byte, error) { return mr.RunReference(c, job) }

// NewTracer returns a span recorder of the given total event capacity
// (<= 0 uses the default); assign it to Job.Trace before Run.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// WriteTrace writes the tracer's recorded events as Chrome trace_event
// JSON, loadable at ui.perfetto.dev or chrome://tracing.
func WriteTrace(w io.Writer, t *Tracer) error { return trace.WriteJSON(w, t.Events()) }

// WriteGantt renders the tracer's recorded events as a terminal Gantt
// chart of the given column width.
func WriteGantt(w io.Writer, t *Tracer, width int) error { return trace.Gantt(w, t.Events(), width) }

// AnalyzeTrace reconstructs the critical path from the tracer's recorded
// events and returns the blame report: per-phase wall time attributed to
// named causes, plus per-node utilization timelines.
func AnalyzeTrace(t *Tracer) (*TraceReport, error) {
	return critpath.Analyze(t.Events(), critpath.Options{})
}

// WriteGanttMarked renders the tracer's events as a terminal Gantt chart
// with the report's critical-path spans highlighted.
func WriteGanttMarked(w io.Writer, t *Tracer, r *TraceReport, width int) error {
	return trace.GanttMarked(w, t.Events(), r.PathEvents(), width)
}

// WriteMetricsDump writes the snapshot plus the process-wide latency
// histogram summaries as indented JSON (the mrrun -metrics-json output).
func WriteMetricsDump(w io.Writer, s Snapshot) error { return metrics.WriteDump(w, s) }

// ReadOutput reads one reduce partition's output file of a completed job.
func ReadOutput(c *Cluster, res *Result, part int) ([]byte, error) {
	if part < 0 || part >= len(res.Outputs) {
		return nil, fmt.Errorf("mrtext: job %s has no partition %d", res.Job, part)
	}
	return c.FS.ReadFile(res.Outputs[part])
}

// ---------- Applications ----------

// WordCount counts word occurrences over text corpora.
func WordCount(inputs ...string) *Job { return apps.WordCount(inputs...) }

// InvertedIndex builds per-word location lists over text corpora.
func InvertedIndex(inputs ...string) *Job { return apps.InvertedIndex(inputs...) }

// WordPOSTag computes per-word part-of-speech statistics; iterations is
// the tagger's CPU-intensity knob (0 = paper-like default).
func WordPOSTag(iterations int, inputs ...string) *Job {
	return apps.WordPOSTag(iterations, inputs...)
}

// AccessLogSum aggregates ad revenue per URL over a UserVisits log.
func AccessLogSum(visits string) *Job { return apps.AccessLogSum(visits) }

// AccessLogJoin joins a UserVisits log with a Rankings table on URL.
func AccessLogJoin(visits, rankings string) *Job { return apps.AccessLogJoin(visits, rankings) }

// PageRank performs one PageRank iteration over a web crawl of the given
// page count.
func PageRank(graph string, pages int64) *Job { return apps.PageRank(graph, pages) }

// SynText builds the parameterizable synthetic text benchmark of §V-D.
func SynText(cfg SynTextConfig, inputs ...string) *Job { return apps.SynText(cfg, inputs...) }

// FreqBufText returns the paper's frequency-buffering setting for text
// applications (k=3000, s=0.01, 30% of the buffer).
func FreqBufText() *FreqBufConfig { return mr.DefaultFreqBufText() }

// FreqBufLog returns the paper's setting for log applications
// (k=10000, s=0.1).
func FreqBufLog() *FreqBufConfig { return mr.DefaultFreqBufLog() }

// ---------- Dataset generation ----------

// DefaultCorpus returns the laptop-scale corpus configuration.
func DefaultCorpus() CorpusConfig { return textgen.DefaultCorpus() }

// DefaultLog returns the laptop-scale access-log configuration.
func DefaultLog() LogConfig { return textgen.DefaultLog() }

// DefaultGraph returns the laptop-scale web-graph configuration.
func DefaultGraph() GraphConfig { return textgen.DefaultGraph() }

// GenerateCorpus writes a Zipfian text corpus of ~targetBytes into the
// cluster's DFS under the given name.
func GenerateCorpus(c *Cluster, name string, cfg CorpusConfig, targetBytes int64) error {
	return generate(c, name, func(w io.Writer) error {
		_, err := textgen.Corpus(w, cfg, targetBytes)
		return err
	})
}

// GenerateUserVisits writes a UserVisits log of ~targetBytes into the DFS.
func GenerateUserVisits(c *Cluster, name string, cfg LogConfig, targetBytes int64) error {
	return generate(c, name, func(w io.Writer) error {
		_, err := textgen.UserVisits(w, cfg, targetBytes)
		return err
	})
}

// GenerateRankings writes the Rankings table (one row per URL) into the DFS.
func GenerateRankings(c *Cluster, name string, cfg LogConfig) error {
	return generate(c, name, func(w io.Writer) error {
		_, err := textgen.Rankings(w, cfg)
		return err
	})
}

// GenerateWebGraph writes the synthetic crawl into the DFS.
func GenerateWebGraph(c *Cluster, name string, cfg GraphConfig) error {
	return generate(c, name, func(w io.Writer) error {
		_, err := textgen.WebGraph(w, cfg)
		return err
	})
}

func generate(c *Cluster, name string, fill func(io.Writer) error) error {
	w, err := c.FS.Create(name, 0)
	if err != nil {
		return err
	}
	if err := fill(w); err != nil {
		return errors.Join(err, w.Close())
	}
	return w.Close()
}
