module mrtext

go 1.22
