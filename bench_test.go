// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark runs the corresponding workload end to end on
// an unthrottled in-process cluster so ns/op reflects algorithmic cost, and
// reports the paper's headline quantity as a custom metric where one exists
// (e.g. %-of-baseline for Table III rows, records-removed for Fig. 7).
//
// The full paper-shaped reproduction — throttled disks, gigabit fabric,
// larger inputs — is produced by `go run ./cmd/mrbench <experiment>`; these
// benchmarks are the `go test -bench` entry points that exercise exactly
// the same code paths per table/figure.
package mrtext_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mrtext"
	"mrtext/internal/apps"
	"mrtext/internal/cluster"
	"mrtext/internal/core/spillmatch"
	"mrtext/internal/core/spillmodel"
	"mrtext/internal/core/topk"
	"mrtext/internal/core/zipfest"
	"mrtext/internal/metrics"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

const benchCorpusBytes = 1 << 20

// benchCluster builds an unthrottled 2-node cluster preloaded with the
// benchmark datasets.
func benchCluster(b *testing.B) *mrtext.Cluster {
	b.Helper()
	c, err := mrtext.NewCluster(mrtext.FastCluster(2))
	if err != nil {
		b.Fatal(err)
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.CorpusConfig{
		Vocabulary: 20_000, Alpha: 1, WordsPerLine: 10, Seed: 1,
	}, benchCorpusBytes); err != nil {
		b.Fatal(err)
	}
	logCfg := mrtext.LogConfig{URLs: 5_000, Alpha: 0.8, Seed: 2}
	if err := mrtext.GenerateUserVisits(c, "visits.log", logCfg, benchCorpusBytes); err != nil {
		b.Fatal(err)
	}
	if err := mrtext.GenerateRankings(c, "rankings.tbl", logCfg); err != nil {
		b.Fatal(err)
	}
	if err := mrtext.GenerateWebGraph(c, "crawl.tsv", mrtext.GraphConfig{
		Pages: 5_000, Alpha: 1, MeanOutDegree: 6, Seed: 3,
	}); err != nil {
		b.Fatal(err)
	}
	return c
}

// benchJob constructs the job for one (app, variant) cell of Table III/IV.
func benchJob(app string, variant string) func(c *mrtext.Cluster) *mrtext.Job {
	return func(c *mrtext.Cluster) *mrtext.Job {
		var job *mrtext.Job
		switch app {
		case "WordCount":
			job = mrtext.WordCount("corpus.txt")
		case "InvertedIndex":
			job = mrtext.InvertedIndex("corpus.txt")
		case "WordPOSTag":
			job = mrtext.WordPOSTag(2, "corpus.txt")
		case "AccessLogSum":
			job = mrtext.AccessLogSum("visits.log")
		case "AccessLogJoin":
			job = mrtext.AccessLogJoin("visits.log", "rankings.tbl")
		case "PageRank":
			job = mrtext.PageRank("crawl.tsv", 5_000)
		}
		job.SpillBufferBytes = 512 << 10
		switch variant {
		case "FreqOpt", "Combined":
			if app == "AccessLogSum" || app == "AccessLogJoin" || app == "PageRank" {
				job.FreqBuf = mrtext.FreqBufLog()
			} else {
				job.FreqBuf = mrtext.FreqBufText()
			}
		}
		if variant == "SpillOpt" || variant == "Combined" {
			job.SpillMatcher = true
		}
		return job
	}
}

// runTimingBench measures one (app, variant) cell end to end.
func runTimingBench(b *testing.B, c *mrtext.Cluster, mk func(*mrtext.Cluster) *mrtext.Job) {
	b.Helper()
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		job := mk(c)
		res, err := mrtext.Run(c, job)
		if err != nil {
			b.Fatal(err)
		}
		bytesOut = res.Agg.Counters[metrics.CtrMapOutputBytes]
	}
	b.SetBytes(benchCorpusBytes)
	b.ReportMetric(float64(bytesOut), "intermediate-bytes")
}

// BenchmarkTable3 covers every cell of Table III: the six applications
// under the four configurations on the (unthrottled) local-cluster shape.
func BenchmarkTable3(b *testing.B) {
	appsList := []string{"WordCount", "InvertedIndex", "WordPOSTag", "AccessLogSum", "AccessLogJoin", "PageRank"}
	variants := []string{"Baseline", "FreqOpt", "SpillOpt", "Combined"}
	for _, app := range appsList {
		for _, variant := range variants {
			b.Run(app+"/"+variant, func(b *testing.B) {
				c := benchCluster(b)
				b.ResetTimer()
				runTimingBench(b, c, benchJob(app, variant))
			})
		}
	}
}

// BenchmarkTable4 covers Table IV: the EC2-scale 20-node cluster for the
// applications the paper reports there.
func BenchmarkTable4(b *testing.B) {
	for _, app := range []string{"WordCount", "InvertedIndex", "PageRank"} {
		for _, variant := range []string{"Baseline", "Combined"} {
			b.Run(app+"/"+variant, func(b *testing.B) {
				c, err := mrtext.NewCluster(mrtext.FastCluster(20))
				if err != nil {
					b.Fatal(err)
				}
				if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.CorpusConfig{
					Vocabulary: 20_000, Alpha: 1, WordsPerLine: 10, Seed: 1,
				}, benchCorpusBytes); err != nil {
					b.Fatal(err)
				}
				if err := mrtext.GenerateWebGraph(c, "crawl.tsv", mrtext.GraphConfig{
					Pages: 5_000, Alpha: 1, MeanOutDegree: 6, Seed: 3,
				}); err != nil {
					b.Fatal(err)
				}
				if err := mrtext.GenerateUserVisits(c, "visits.log", mrtext.LogConfig{URLs: 5000, Alpha: 0.8, Seed: 2}, 64<<10); err != nil {
					b.Fatal(err)
				}
				if err := mrtext.GenerateRankings(c, "rankings.tbl", mrtext.LogConfig{URLs: 5000, Seed: 2}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				runTimingBench(b, c, benchJob(app, variant))
			})
		}
	}
}

// BenchmarkFig2Breakdown measures the instrumented baseline run that
// produces Fig. 2's serialized cost breakdown (and Table II's idle
// percentages), including the cost of the instrumentation itself.
func BenchmarkFig2Breakdown(b *testing.B) {
	c := benchCluster(b)
	b.ResetTimer()
	var userFrac float64
	for i := 0; i < b.N; i++ {
		res, err := mrtext.Run(c, benchJob("WordCount", "Baseline")(c))
		if err != nil {
			b.Fatal(err)
		}
		agg := res.Agg
		userFrac = float64(agg.UserWork()) / float64(agg.TotalWork())
	}
	b.ReportMetric(100*userFrac, "user-code-%")
}

// BenchmarkFig3Corpus measures corpus generation plus exact word counting —
// the pipeline that produces the Fig. 3 rank-frequency curve.
func BenchmarkFig3Corpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exact := topk.NewExact()
		sampler, err := zipfest.NewSampler(20_000, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for j := 0; j < 200_000; j++ {
			exact.Offer(textgen.WordForRank(sampler.Rank(rng.Float64())))
		}
		if _, err := zipfest.EstimateAlpha(exact.RankedCounts()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(200_000)
}

// BenchmarkFig7Predictors measures the three Fig. 7 predictors on the same
// Zipfian key stream: the paper's Space-Saving profiler, the Ideal oracle
// and the LRU buffer.
func BenchmarkFig7Predictors(b *testing.B) {
	sampler, err := zipfest.NewSampler(20_000, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200_000
	stream := make([]string, n)
	for i := range stream {
		stream[i] = textgen.WordForRank(sampler.Rank(rng.Float64()))
	}
	b.Run("SpaceSaving", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := topk.NewStreamSummary(4 * 3000)
			for _, k := range stream {
				s.Offer(k)
			}
			_ = s.Top(3000)
		}
		b.SetBytes(n)
	})
	b.Run("Ideal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := topk.NewExact()
			for _, k := range stream {
				e.Offer(k)
			}
			_ = e.Top(3000)
		}
		b.SetBytes(n)
	})
	b.Run("LRU", func(b *testing.B) {
		var removed uint64
		for i := 0; i < b.N; i++ {
			l := topk.NewLRU(3000)
			for _, k := range stream {
				l.Touch(k)
			}
			removed = l.Hits()
		}
		b.SetBytes(n)
		b.ReportMetric(100*float64(removed)/float64(n), "removed-%")
	})
}

// BenchmarkFig8FreqBuf measures the full frequency-buffered WordCount run
// against its baseline — the Fig. 8 comparison — reporting the share of
// intermediate records the frequent-key table absorbed.
func BenchmarkFig8FreqBuf(b *testing.B) {
	for _, variant := range []string{"Baseline", "FreqOpt"} {
		b.Run(variant, func(b *testing.B) {
			c := benchCluster(b)
			b.ResetTimer()
			var hits, total int64
			for i := 0; i < b.N; i++ {
				res, err := mrtext.Run(c, benchJob("WordCount", variant)(c))
				if err != nil {
					b.Fatal(err)
				}
				hits = res.Agg.Counters[metrics.CtrFreqHits]
				total = res.Agg.Counters[metrics.CtrMapOutputRecords]
			}
			if total > 0 {
				b.ReportMetric(100*float64(hits)/float64(total), "absorbed-%")
			}
		})
	}
}

// BenchmarkFig9SpillControllers measures the map phase under the static
// controller vs the spill-matcher — the mechanism behind Fig. 9 — and
// reports the slower-thread idle share.
func BenchmarkFig9SpillControllers(b *testing.B) {
	for _, variant := range []string{"Baseline", "SpillOpt"} {
		b.Run(variant, func(b *testing.B) {
			c := benchCluster(b)
			b.ResetTimer()
			var idle float64
			for i := 0; i < b.N; i++ {
				res, err := mrtext.Run(c, benchJob("WordCount", variant)(c))
				if err != nil {
					b.Fatal(err)
				}
				idle = res.MapIdleFraction() + res.SupportIdleFraction()
			}
			b.ReportMetric(100*idle, "thread-idle-%")
		})
	}
}

// BenchmarkFig10SynText measures representative corners of the Fig. 10
// grid: CPU-light/storage-light (WordCount-like), CPU-heavy, and
// storage-heavy (InvertedIndex-like), baseline vs combined.
func BenchmarkFig10SynText(b *testing.B) {
	corners := []struct {
		name    string
		cpu     int
		storage float64
	}{
		{"light", 0, 0},
		{"cpu-heavy", 32, 0},
		{"storage-heavy", 0, 1},
	}
	for _, corner := range corners {
		for _, variant := range []string{"Baseline", "Combined"} {
			b.Run(fmt.Sprintf("%s/%s", corner.name, variant), func(b *testing.B) {
				c := benchCluster(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					job := mrtext.SynText(mrtext.SynTextConfig{CPUFactor: corner.cpu, Storage: corner.storage}, "corpus.txt")
					job.SpillBufferBytes = 512 << 10
					if variant == "Combined" {
						job.FreqBuf = mrtext.FreqBufText()
						job.SpillMatcher = true
					}
					if _, err := mrtext.Run(c, job); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(benchCorpusBytes)
			})
		}
	}
}

// BenchmarkSpillModel measures the §IV-C analytic simulator, which the
// property tests sweep to verify eq. 1.
func BenchmarkSpillModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := spillmodel.Simulate(spillmodel.Params{
			BufferBytes: 1 << 20, InputBytes: 256 << 20,
			ProduceRate: 150e6, ConsumeRate: 100e6,
		}, spillmatch.NewMatcher(spillmatch.DefaultConfig()))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceExecutor measures the sequential ground-truth executor
// used by the correctness tests.
func BenchmarkReferenceExecutor(b *testing.B) {
	c, err := cluster.New(cluster.Fast(1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := c.FS.Create("corpus.txt", 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := textgen.Corpus(w, textgen.CorpusConfig{Vocabulary: 5000, Alpha: 1, WordsPerLine: 10, Seed: 1}, 256<<10); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.RunReference(c, apps.WordCount("corpus.txt")); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(256 << 10)
}
